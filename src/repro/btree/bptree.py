"""A generic in-memory B+-tree.

This is the storage substrate shared by the SB-tree (Section 3.2 of the
paper) and the element index (Section 3.4).  The paper assumes B+-trees both
for the update log and for the element index; implementing one real B+-tree
(rather than wrapping a ``dict``) preserves the access-cost structure that
the paper's complexity analysis counts: ``O(log n)`` node visits per lookup
and contiguous leaf scans for range queries.

Keys may be any mutually comparable values; the library uses tuples of
integers throughout.  Keys are unique: inserting an existing key replaces its
value.

The implementation is a textbook B+-tree:

- leaves hold ``(key, value)`` pairs and are doubly linked for ordered scans;
- internal nodes hold separator keys and child pointers;
- deletion rebalances by borrowing from a sibling or merging with it.

The ``order`` parameter is the maximum number of keys a node may hold
(i.e. the fan-out minus one for internal nodes).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterable, Iterator

from repro.errors import KeyNotFoundError

__all__ = ["BPlusTree"]

_MIN_ORDER = 3
_DEFAULT_ORDER = 64


class _Node:
    """Base node: ``keys`` is always sorted ascending."""

    __slots__ = ("keys", "parent")

    def __init__(self):
        self.keys: list = []
        self.parent: _Internal | None = None

    @property
    def is_leaf(self) -> bool:
        raise NotImplementedError


class _Leaf(_Node):
    __slots__ = ("values", "next", "prev")

    def __init__(self):
        super().__init__()
        self.values: list = []
        self.next: _Leaf | None = None
        self.prev: _Leaf | None = None

    @property
    def is_leaf(self) -> bool:
        return True


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self):
        super().__init__()
        # len(children) == len(keys) + 1; child[i] holds keys < keys[i],
        # child[i+1] holds keys >= keys[i].
        self.children: list[_Node] = []

    @property
    def is_leaf(self) -> bool:
        return False


class BPlusTree:
    """An ordered key → value map backed by a B+-tree.

    >>> t = BPlusTree(order=4)
    >>> for i in range(10):
    ...     t.insert(i, i * i)
    >>> t.get(3)
    9
    >>> list(t.range(2, 5))
    [(2, 4), (3, 9), (4, 16)]
    >>> t.delete(3)
    >>> 3 in t
    False
    """

    def __init__(self, order: int = _DEFAULT_ORDER):
        if order < _MIN_ORDER:
            raise ValueError(f"order must be >= {_MIN_ORDER}, got {order}")
        self._order = order
        self._root: _Node = _Leaf()
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # basic properties

    @property
    def order(self) -> int:
        """Maximum number of keys per node."""
        return self._order

    @property
    def height(self) -> int:
        """Number of levels, counting the leaf level (1 for an empty tree)."""
        return self._height

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, key) -> bool:
        leaf, idx = self._find(key)
        return idx < len(leaf.keys) and leaf.keys[idx] == key

    def node_count(self) -> int:
        """Total number of nodes (used for size accounting in Fig. 11(a))."""
        count = 0
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)  # type: ignore[union-attr]
        return count

    def approximate_bytes(self) -> int:
        """A crude size estimate used by the Fig. 11(a) experiment.

        Counts 8 bytes per key component / value slot / child pointer, which
        mirrors the fixed-width integer layout the paper's C++ implementation
        would have used.
        """
        total = 0
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            key_width = 0
            for key in node.keys:
                key_width += 8 * (len(key) if isinstance(key, tuple) else 1)
            total += key_width
            if node.is_leaf:
                total += 8 * len(node.values)  # type: ignore[union-attr]
            else:
                total += 8 * len(node.children)  # type: ignore[union-attr]
                stack.extend(node.children)  # type: ignore[union-attr]
        return total

    # ------------------------------------------------------------------
    # lookup

    def _find_leaf(self, key) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            idx = bisect_right(node.keys, key)
            node = node.children[idx]  # type: ignore[union-attr]
        return node  # type: ignore[return-value]

    def _find(self, key) -> tuple[_Leaf, int]:
        leaf = self._find_leaf(key)
        return leaf, bisect_left(leaf.keys, key)

    def get(self, key, default=None):
        """Return the value for ``key``, or ``default`` when absent."""
        leaf, idx = self._find(key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    def __getitem__(self, key):
        leaf, idx = self._find(key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        raise KeyNotFoundError(key)

    def first(self):
        """Return the smallest ``(key, value)`` pair.

        Raises :class:`~repro.errors.KeyNotFoundError` on an empty tree.
        """
        if not self._size:
            raise KeyNotFoundError("<first of empty tree>")
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[union-attr]
        return node.keys[0], node.values[0]  # type: ignore[union-attr]

    def last(self):
        """Return the largest ``(key, value)`` pair."""
        if not self._size:
            raise KeyNotFoundError("<last of empty tree>")
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]  # type: ignore[union-attr]
        return node.keys[-1], node.values[-1]  # type: ignore[union-attr]

    def floor(self, key):
        """Return the largest ``(k, v)`` with ``k <= key``, or ``None``."""
        leaf, idx = self._find(key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.keys[idx], leaf.values[idx]
        if idx > 0:
            return leaf.keys[idx - 1], leaf.values[idx - 1]
        prev = leaf.prev
        if prev is not None and prev.keys:
            return prev.keys[-1], prev.values[-1]
        return None

    def ceiling(self, key):
        """Return the smallest ``(k, v)`` with ``k >= key``, or ``None``."""
        leaf, idx = self._find(key)
        if idx < len(leaf.keys):
            return leaf.keys[idx], leaf.values[idx]
        nxt = leaf.next
        if nxt is not None and nxt.keys:
            return nxt.keys[0], nxt.values[0]
        return None

    # ------------------------------------------------------------------
    # iteration

    def _first_leaf(self) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]  # type: ignore[union-attr]
        return node  # type: ignore[return-value]

    def items(self) -> Iterator[tuple]:
        """Yield all ``(key, value)`` pairs in ascending key order."""
        leaf: _Leaf | None = self._first_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def keys(self) -> Iterator:
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator:
        for _, value in self.items():
            yield value

    def __iter__(self) -> Iterator:
        return self.keys()

    def range(self, lo=None, hi=None, *, inclusive=(True, False)) -> Iterator[tuple]:
        """Yield ``(key, value)`` pairs with ``lo <= key < hi`` (default bounds).

        ``lo=None`` / ``hi=None`` leave that side unbounded.  ``inclusive``
        controls closed/open endpoints as ``(lo_closed, hi_closed)``.
        """
        lo_closed, hi_closed = inclusive
        if lo is None:
            leaf: _Leaf | None = self._first_leaf()
            idx = 0
        else:
            leaf, idx = self._find(lo)
            if not lo_closed:
                while (
                    leaf is not None
                    and idx < len(leaf.keys)
                    and leaf.keys[idx] == lo
                ):
                    idx += 1
                    if idx >= len(leaf.keys):
                        leaf, idx = leaf.next, 0
        while leaf is not None:
            keys = leaf.keys
            n = len(keys)
            while idx < n:
                key = keys[idx]
                if hi is not None:
                    if hi_closed:
                        if key > hi:
                            return
                    elif key >= hi:
                        return
                yield key, leaf.values[idx]
                idx += 1
            leaf, idx = leaf.next, 0

    def leaf_slices(self, lo=None, hi=None) -> Iterator[list]:
        """Yield per-leaf key chunks covering ``lo <= key < hi``, in order.

        The bulk leaf-scan primitive behind :meth:`range_keys` and the
        element index's whole-tag column builder: one Python-level step
        per *leaf*, each chunk produced by a C-level list slice (or the
        leaf's whole key list when no trimming is needed).  Chunks may
        alias live leaf storage — callers must not mutate a chunk or the
        tree while consuming the iterator.
        """
        if lo is None:
            leaf: _Leaf | None = self._first_leaf()
            idx = 0
        else:
            leaf, idx = self._find(lo)
        while leaf is not None:
            keys = leaf.keys
            if hi is not None and keys and keys[-1] >= hi:
                chunk = keys[idx : bisect_left(keys, hi, idx)]
                if chunk:
                    yield chunk
                return
            if idx:
                chunk = keys[idx:]
                if chunk:
                    yield chunk
            elif keys:
                yield keys
            leaf, idx = leaf.next, 0

    def range_keys(self, lo=None, hi=None) -> list:
        """Keys with ``lo <= key < hi`` (default bounds) as one list.

        The bulk form of :meth:`range` for key-only scans: whole-leaf list
        slices (:meth:`leaf_slices`) replace per-key generator resumption,
        so the cost is one Python-level step per *leaf* rather than per
        key.  This is what the cold read path compiles element columns
        from — every uncached join re-extracts whole segments (or, on the
        whole-tag bulk path, a tag's entire leaf run at once), making the
        per-key constant the bill.
        """
        out: list = []
        for chunk in self.leaf_slices(lo, hi):
            out.extend(chunk)
        return out

    def count_range(self, lo=None, hi=None, *, inclusive=(True, False)) -> int:
        """Count keys in the range without materializing the pairs."""
        return sum(1 for _ in self.range(lo, hi, inclusive=inclusive))

    # ------------------------------------------------------------------
    # insertion

    def insert(self, key, value) -> None:
        """Insert ``key`` → ``value``, replacing any existing binding."""
        leaf, idx = self._find(key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.values[idx] = value
            return
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        self._size += 1
        if len(leaf.keys) > self._order:
            self._split_leaf(leaf)

    def __setitem__(self, key, value) -> None:
        self.insert(key, value)

    def _split_leaf(self, leaf: _Leaf) -> None:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        self._insert_into_parent(leaf, right.keys[0], right)

    def _insert_into_parent(self, left: _Node, sep_key, right: _Node) -> None:
        parent = left.parent
        if parent is None:
            new_root = _Internal()
            new_root.keys = [sep_key]
            new_root.children = [left, right]
            left.parent = new_root
            right.parent = new_root
            self._root = new_root
            self._height += 1
            return
        idx = bisect_right(parent.keys, sep_key)
        parent.keys.insert(idx, sep_key)
        parent.children.insert(idx + 1, right)
        right.parent = parent
        if len(parent.keys) > self._order:
            self._split_internal(parent)

    def _split_internal(self, node: _Internal) -> None:
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        for child in right.children:
            child.parent = right
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._insert_into_parent(node, sep_key, right)

    # ------------------------------------------------------------------
    # deletion

    def delete(self, key) -> None:
        """Remove ``key``; raise :class:`KeyNotFoundError` when absent."""
        leaf, idx = self._find(key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            raise KeyNotFoundError(key)
        del leaf.keys[idx]
        del leaf.values[idx]
        self._size -= 1
        self._rebalance_after_delete(leaf)

    def discard(self, key) -> bool:
        """Remove ``key`` if present; return whether a removal happened."""
        try:
            self.delete(key)
        except KeyNotFoundError:
            return False
        return True

    def pop(self, key, *default):
        """Remove ``key`` and return its value (or ``default`` when given)."""
        leaf, idx = self._find(key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            value = leaf.values[idx]
            del leaf.keys[idx]
            del leaf.values[idx]
            self._size -= 1
            self._rebalance_after_delete(leaf)
            return value
        if default:
            return default[0]
        raise KeyNotFoundError(key)

    def _min_keys(self) -> int:
        return self._order // 2

    def _rebalance_after_delete(self, node: _Node) -> None:
        min_keys = self._min_keys()
        while node is not self._root and len(node.keys) < min_keys:
            parent = node.parent
            assert parent is not None
            child_idx = parent.children.index(node)
            if self._try_borrow(parent, child_idx):
                return
            node = self._merge(parent, child_idx)
        if node is self._root and not node.is_leaf and len(node.keys) == 0:
            # The root emptied out: its single child becomes the new root.
            child = node.children[0]  # type: ignore[union-attr]
            child.parent = None
            self._root = child
            self._height -= 1

    def _try_borrow(self, parent: _Internal, child_idx: int) -> bool:
        node = parent.children[child_idx]
        min_keys = self._min_keys()
        # Borrow from the left sibling.
        if child_idx > 0:
            left = parent.children[child_idx - 1]
            if len(left.keys) > min_keys:
                if node.is_leaf:
                    node.keys.insert(0, left.keys.pop())
                    node.values.insert(0, left.values.pop())  # type: ignore[union-attr]
                    parent.keys[child_idx - 1] = node.keys[0]
                else:
                    sep = parent.keys[child_idx - 1]
                    node.keys.insert(0, sep)
                    parent.keys[child_idx - 1] = left.keys.pop()
                    child = left.children.pop()  # type: ignore[union-attr]
                    child.parent = node
                    node.children.insert(0, child)  # type: ignore[union-attr]
                return True
        # Borrow from the right sibling.
        if child_idx + 1 < len(parent.children):
            right = parent.children[child_idx + 1]
            if len(right.keys) > min_keys:
                if node.is_leaf:
                    node.keys.append(right.keys.pop(0))
                    node.values.append(right.values.pop(0))  # type: ignore[union-attr]
                    parent.keys[child_idx] = right.keys[0]
                else:
                    sep = parent.keys[child_idx]
                    node.keys.append(sep)
                    parent.keys[child_idx] = right.keys.pop(0)
                    child = right.children.pop(0)  # type: ignore[union-attr]
                    child.parent = node
                    node.children.append(child)  # type: ignore[union-attr]
                return True
        return False

    def _merge(self, parent: _Internal, child_idx: int) -> _Node:
        """Merge ``children[child_idx]`` with a sibling; return the parent."""
        if child_idx > 0:
            left_idx = child_idx - 1
        else:
            left_idx = child_idx
        left = parent.children[left_idx]
        right = parent.children[left_idx + 1]
        sep_idx = left_idx
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)  # type: ignore[union-attr]
            left.next = right.next  # type: ignore[union-attr]
            if left.next is not None:  # type: ignore[union-attr]
                left.next.prev = left  # type: ignore[union-attr]
        else:
            left.keys.append(parent.keys[sep_idx])
            left.keys.extend(right.keys)
            for child in right.children:  # type: ignore[union-attr]
                child.parent = left
            left.children.extend(right.children)  # type: ignore[union-attr]
        del parent.keys[sep_idx]
        del parent.children[sep_idx + 1]
        return parent

    # ------------------------------------------------------------------
    # bulk operations

    @classmethod
    def bulk_load(cls, items: Iterable[tuple], order: int = _DEFAULT_ORDER) -> "BPlusTree":
        """Build a tree from ``(key, value)`` pairs sorted ascending by key.

        This is the LS-mode "build the B+-tree from scratch just before
        querying" path (Section 5.1).  Leaves are packed to ~ ``order`` keys,
        which yields a tree denser than one grown by repeated insertion.
        """
        tree = cls(order=order)
        pairs = list(items)
        if not pairs:
            return tree
        for i in range(1, len(pairs)):
            if pairs[i - 1][0] >= pairs[i][0]:
                raise ValueError(
                    "bulk_load requires strictly ascending keys; "
                    f"violated at position {i}"
                )
        # Build the leaf level.
        leaves: list[_Leaf] = []
        per_leaf = max(2, order)
        for start in range(0, len(pairs), per_leaf):
            chunk = pairs[start : start + per_leaf]
            leaf = _Leaf()
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next = leaf
                leaf.prev = leaves[-1]
            leaves.append(leaf)
        # Avoid an underfull final leaf (steal one entry from its neighbour).
        if len(leaves) > 1 and len(leaves[-1].keys) < 2:
            prev = leaves[-2]
            leaves[-1].keys.insert(0, prev.keys.pop())
            leaves[-1].values.insert(0, prev.values.pop())
        tree._size = len(pairs)
        level: list[_Node] = list(leaves)
        height = 1
        while len(level) > 1:
            next_level: list[_Node] = []
            per_node = max(2, order)
            for start in range(0, len(level), per_node):
                group = level[start : start + per_node]
                if len(group) == 1:
                    # A lone trailing child: merge it into the previous node.
                    prev_node = next_level[-1]  # type: ignore[assignment]
                    assert isinstance(prev_node, _Internal)
                    prev_node.keys.append(_leftmost_key(group[0]))
                    prev_node.children.append(group[0])
                    group[0].parent = prev_node
                    continue
                node = _Internal()
                node.children = group
                for child in group:
                    child.parent = node
                node.keys = [_leftmost_key(child) for child in group[1:]]
                next_level.append(node)
            level = next_level
            height += 1
        tree._root = level[0]
        tree._root.parent = None
        tree._height = height
        return tree

    def clear(self) -> None:
        """Remove every entry."""
        self._root = _Leaf()
        self._size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # invariant checking (used by tests)

    def check_invariants(self) -> None:
        """Verify structural invariants; raise ``AssertionError`` on breakage.

        Checked: sortedness in every node, separator correctness, leaf-chain
        order and completeness, parent pointers, uniform leaf depth, and
        occupancy bounds.
        """
        min_keys = self._min_keys()
        leaf_depths: set[int] = set()
        count = 0

        def walk(node: _Node, depth: int, lo, hi) -> None:
            nonlocal count
            assert all(
                node.keys[i] < node.keys[i + 1] for i in range(len(node.keys) - 1)
            ), "node keys not strictly ascending"
            for key in node.keys:
                if lo is not None:
                    assert key >= lo, "key below subtree lower bound"
                if hi is not None:
                    assert key < hi, "key above subtree upper bound"
            if node is not self._root:
                assert len(node.keys) >= (1 if node.is_leaf else 1), "empty node"
                if node.is_leaf:
                    assert len(node.keys) >= min(min_keys, 1)
            assert len(node.keys) <= self._order + (0 if node is self._root else 0) or (
                len(node.keys) <= self._order
            )
            if node.is_leaf:
                leaf_depths.add(depth)
                count += len(node.keys)
                return
            internal = node
            assert isinstance(internal, _Internal)
            assert len(internal.children) == len(internal.keys) + 1
            for i, child in enumerate(internal.children):
                assert child.parent is internal, "broken parent pointer"
                child_lo = internal.keys[i - 1] if i > 0 else lo
                child_hi = internal.keys[i] if i < len(internal.keys) else hi
                walk(child, depth + 1, child_lo, child_hi)

        walk(self._root, 1, None, None)
        assert len(leaf_depths) <= 1, "leaves at differing depths"
        assert count == self._size, f"size mismatch: {count} != {self._size}"
        # Leaf chain must visit every key in ascending order.
        chained = [k for k, _ in self.items()]
        assert chained == sorted(chained), "leaf chain out of order"
        assert len(chained) == self._size, "leaf chain incomplete"


def _leftmost_key(node: _Node):
    while not node.is_leaf:
        node = node.children[0]  # type: ignore[union-attr]
    return node.keys[0]
