"""Durable sharding: per-shard WAL directories + a coordinated manifest.

Directory layout::

    <root>/
      manifest.json        # atomic: epoch, shard count, per-shard seq+crc,
                           # and the document map at checkpoint time
      docmap.wal           # meta journal of document-map changes
      shard-00/            # one DurableDatabase directory per shard
        journal.wal
        checkpoint-<epoch>.json
      shard-01/ ...

**Commit protocol.**  An op that changes the document map (new document /
document removal) first appends a meta record to ``docmap.wal`` carrying
the *shard journal seq the shard op is about to get* — then commits on
the shard (validate -> shard journal fsync -> apply).  Recovery replays a
meta record only when the shard's recovered journal actually reached that
seq; a record whose seq the manifest already covers was folded into the
manifest's document list at checkpoint time and is skipped.  A dangling
(unreached) record can only be the tail (one op in flight at a time) and
is discarded *durably* — rewritten out of ``docmap.wal``, since a later
commit reaching the predicted seq would otherwise resurrect it as a
phantom document.  A dangling record anywhere else means the directory
was tampered with — a typed :class:`~repro.storage.SnapshotError`.

**Coordinated checkpoint (all-or-nothing).**  Phase 1 writes every
shard's snapshot under the *next* epoch's name (journals untouched — the
old epoch stays fully recoverable).  The single atomic commit point is
the manifest replace: it names the new epoch, the per-shard ``last_seq``
and payload crc32, and the document map.  Phase 2 truncates the shard
journals and the meta journal and deletes old-epoch snapshots.  A crash
anywhere leaves either a complete old epoch or a complete new one; on
reopen, a shard checkpoint that is missing or disagrees with the manifest
(crc or seq — a mixed-epoch set) is refused with a typed
:class:`~repro.storage.SnapshotError` instead of silently loading.

One honest caveat (also in DESIGN.md §4f): a multi-document removal
decomposes into per-document commits, so a crash mid-decomposition
durably keeps a *prefix* of the removals — each individually consistent,
but not atomic as a set.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path

from repro.durability import hooks
from repro.durability.atomic import atomic_write_text
from repro.durability.recovery import validate_op
from repro.durability.database import DurableDatabase
from repro.durability.wal import Journal, read_journal
from repro.errors import RecoveryError
from repro.shard.database import ShardedDatabase
from repro.shard.docmap import DocumentMap
from repro.storage import SnapshotError

__all__ = ["ShardedDurableDatabase", "MANIFEST_NAME", "DOCMAP_JOURNAL_NAME"]

MANIFEST_NAME = "manifest.json"
DOCMAP_JOURNAL_NAME = "docmap.wal"
MANIFEST_FORMAT = "repro-shard-manifest"
MANIFEST_VERSION = 1


def _shard_dirname(index: int) -> str:
    return f"shard-{index:02d}"


def _checkpoint_name(epoch: int) -> str:
    return f"checkpoint-{epoch}.json"


def read_manifest(directory: Path) -> dict | None:
    """Load and structurally validate ``manifest.json`` (None if absent)."""
    path = directory / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"unreadable shard manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
        raise SnapshotError(f"{path} is not a shard manifest")
    if manifest.get("version") != MANIFEST_VERSION:
        raise SnapshotError(
            f"unsupported shard manifest version {manifest.get('version')!r}"
        )
    n = manifest.get("n_shards")
    epoch = manifest.get("epoch")
    docs = manifest.get("docs")
    shards = manifest.get("shards")
    if (
        not isinstance(n, int)
        or n < 1
        or not isinstance(epoch, int)
        or epoch < 0
        or not isinstance(docs, list)
        or not all(isinstance(s, int) and 0 <= s < n for s in docs)
        or not isinstance(shards, list)
        or len(shards) != n
    ):
        raise SnapshotError(f"shard manifest {path} has ill-typed fields")
    for index, entry in enumerate(shards):
        if (
            not isinstance(entry, dict)
            or entry.get("index") != index
            or not isinstance(entry.get("last_seq"), int)
            or not (entry.get("crc32") is None or isinstance(entry["crc32"], int))
        ):
            raise SnapshotError(
                f"shard manifest {path} entry {index} is malformed"
            )
    return manifest


class ShardedDurableDatabase(ShardedDatabase):
    """A :class:`ShardedDatabase` whose shards are durable directories.

    Parameters
    ----------
    directory:
        The sharded root (see module docstring).  Created when missing;
        an existing directory is opened through coordinated recovery.
    n_shards:
        Required when creating a fresh directory; on reopen it must match
        the manifest (or be omitted).
    checkpoint_every:
        Optional total-op count after which a *coordinated* checkpoint is
        taken automatically.
    """

    def __init__(
        self,
        directory: str | Path,
        n_shards: int | None = None,
        *,
        mode: str = "dynamic",
        keep_text: bool = True,
        executor="inprocess",
        checkpoint_every: int | None = None,
    ):
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be a positive op count")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = read_manifest(self.directory)
        if manifest is None:
            if n_shards is None:
                n_shards = 1
            epoch = 0
            docs: list[int] = []
            entries = [
                {"index": i, "last_seq": 0, "crc32": None} for i in range(n_shards)
            ]
        else:
            if n_shards is not None and n_shards != manifest["n_shards"]:
                raise SnapshotError(
                    f"directory {self.directory} holds {manifest['n_shards']} "
                    f"shards; cannot open with n_shards={n_shards}"
                )
            n_shards = manifest["n_shards"]
            epoch = manifest["epoch"]
            docs = list(manifest["docs"])
            entries = manifest["shards"]
        self._epoch = epoch
        durables: list[DurableDatabase] = []
        for i in range(n_shards):
            shard_dir = self.directory / _shard_dirname(i)
            self._verify_epoch_checkpoint(shard_dir, i, epoch, entries[i])
            durables.append(
                DurableDatabase(
                    shard_dir,
                    mode=mode,
                    keep_text=keep_text,
                    checkpoint_name=_checkpoint_name(epoch),
                    sid_start=1 + i,
                    sid_stride=n_shards,
                )
            )
        docs, meta_seq, meta_scan, dangling = self._replay_docmap(
            durables, docs, entries
        )
        super().__init__(
            n_shards,
            mode=mode,
            keep_text=keep_text,
            executor=executor,
            shards=durables,
            docmap=DocumentMap(docs),
        )
        meta_path = self.directory / DOCMAP_JOURNAL_NAME
        if dangling:
            # The discard must be durable: a later commit will reach the
            # seq the dangling record predicted, and an on-disk copy would
            # then be replayed as a phantom document on the next open.
            self._meta_journal = Journal(meta_path, truncate_to=0)
            self._meta_journal.append_all(
                (rec["seq"], {k: v for k, v in rec.items() if k != "seq"})
                for rec in meta_scan.records[:-1]
            )
        else:
            self._meta_journal = Journal(
                meta_path,
                truncate_to=(
                    meta_scan.valid_bytes if meta_scan.torn_tail else None
                ),
            )
        self._meta_seq = meta_seq
        self._checkpoint_every = checkpoint_every
        self._ops_since_checkpoint = 0
        self._in_batch = False
        try:
            self.check_invariants()
        except AssertionError as exc:
            raise SnapshotError(
                f"recovered sharded directory {self.directory} fails the "
                f"document-map correspondence: {exc}"
            ) from exc
        if manifest is None:
            self._write_manifest()
        self._drop_stale_checkpoints()

    # ------------------------------------------------------------------
    # recovery pieces

    def _verify_epoch_checkpoint(
        self, shard_dir: Path, index: int, epoch: int, entry: dict
    ) -> None:
        """Refuse a checkpoint that is missing or from another epoch."""
        path = shard_dir / _checkpoint_name(epoch)
        if entry["crc32"] is None:
            # No coordinated checkpoint taken at this epoch (fresh set).
            return
        if not path.exists():
            raise SnapshotError(
                f"shard {index} is missing its epoch-{epoch} checkpoint "
                f"({path}): mixed-epoch shard checkpoint set refused"
            )
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(
                f"shard {index} epoch-{epoch} checkpoint unreadable: {exc}"
            ) from exc
        if (
            not isinstance(envelope, dict)
            or envelope.get("crc32") != entry["crc32"]
            or envelope.get("last_seq") != entry["last_seq"]
        ):
            raise SnapshotError(
                f"shard {index} checkpoint {path} does not match the "
                f"manifest (expected seq {entry['last_seq']}, "
                f"crc {entry['crc32']}): mixed-epoch shard checkpoint set "
                "refused"
            )

    def _replay_docmap(
        self,
        durables: list[DurableDatabase],
        docs: list[int],
        entries: list[dict],
    ):
        """Fold ``docmap.wal`` into the manifest's document list.

        A record whose ``shard_seq`` the manifest entry already covers was
        folded into the manifest's document list by the coordinated
        checkpoint and is skipped — a crash between the manifest swap and
        the meta-journal truncation leaves such records behind.  Otherwise
        a record is applied only when its shard's recovered journal
        reached the seq the record predicted; an unreached record is legal
        only as the tail (the crash window between the meta append and the
        shard commit) and is reported for durable discard.
        """
        scan = read_journal(self.directory / DOCMAP_JOURNAL_NAME)
        docs = list(docs)
        meta_seq = 0
        dangling = False
        for position, record in enumerate(scan.records):
            meta_seq = record["seq"]
            shard = record.get("shard")
            shard_seq = record.get("shard_seq")
            kind = record.get("op")
            if (
                not isinstance(shard, int)
                or not 0 <= shard < len(durables)
                or not isinstance(shard_seq, int)
                or kind not in ("doc_insert", "doc_remove")
            ):
                raise SnapshotError(
                    f"malformed docmap.wal record at seq {record.get('seq')}"
                )
            if shard_seq <= entries[shard]["last_seq"]:
                continue
            if durables[shard].last_seq >= shard_seq:
                index = record["index"]
                if kind == "doc_insert":
                    docs.insert(index, shard)
                else:
                    del docs[index]
            elif position != len(scan.records) - 1:
                raise SnapshotError(
                    f"docmap.wal seq {record['seq']} references shard "
                    f"{shard} seq {shard_seq}, which the shard journal "
                    "never reached — inconsistent sharded directory"
                )
            else:
                dangling = True
        return docs, meta_seq, scan, dangling

    def _drop_stale_checkpoints(self) -> None:
        """Delete snapshot files from other epochs (crashed phase 1s)."""
        keep = _checkpoint_name(self._epoch)
        for i in range(self.n_shards):
            shard_dir = self.directory / _shard_dirname(i)
            for path in shard_dir.glob("checkpoint-*.json"):
                if path.name != keep:
                    path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # commit protocol (meta record before shard commit)

    def _pre_commit(self, shard: int, op: dict, doc_change) -> None:
        # Validate read-only against the shard *first*: a rejected op must
        # not leave a dangling meta record behind.
        validate_op(self._base(shard), op)
        if doc_change is None:
            return
        kind, doc_index = doc_change
        self._meta_seq += 1
        self._meta_journal.append(
            self._meta_seq,
            {
                "op": "doc_insert" if kind == "insert" else "doc_remove",
                "index": doc_index,
                "shard": shard,
                "shard_seq": self._shards[shard].last_seq + 1,
            },
        )

    def _commit(self, shard: int, op: dict, doc_change=None):
        if self._in_batch and doc_change is not None:
            # Document-map changes keep the per-op meta protocol: the meta
            # record predicts the exact shard journal seq the commit is
            # about to take, so every pending batch buffer must flush
            # first (per-shard journal order == live apply order) and the
            # op itself journals immediately instead of riding the batch.
            self._flush_deferred()
            durable = self._shards[shard]
            durable.suspend_deferred()
            try:
                result = super()._commit(shard, op, doc_change)
            finally:
                durable.resume_deferred()
        else:
            result = super()._commit(shard, op, doc_change)
        self._ops_since_checkpoint += 1
        if (
            not self._in_batch
            and self._checkpoint_every is not None
            and self._ops_since_checkpoint >= self._checkpoint_every
        ):
            # A coordinated checkpoint mid-batch would snapshot applied-
            # but-unjournaled sub-ops under a last_seq that does not cover
            # them (their later batch record would then replay on top —
            # a double apply); the trigger is re-checked at batch end.
            self.checkpoint()
        return result

    # ------------------------------------------------------------------
    # batched commits (one journal record per shard share)

    @contextmanager
    def _batched_commits(self):
        """Per-shard deferred journaling for the span of one apply_batch.

        Every shard buffers its share of the batch and flushes it as a
        single CRC-framed journal record with one fsync — so the batch
        costs one fsync *per touched shard* instead of one per op, and
        recovery sees each shard's share apply all-or-nothing.  Atomicity
        is per shard: a crash between two shard flushes durably keeps one
        shard's share and not the other's (same caveat as multi-document
        removals, DESIGN.md §4f).  The flush runs even when a sub-op
        raises, keeping disk in lockstep with the already-applied prefix.
        """
        for durable in self._shards:
            durable.begin_deferred()
        self._in_batch = True
        try:
            yield
        finally:
            self._in_batch = False
            self._flush_deferred(end=True)
            if (
                self._checkpoint_every is not None
                and self._ops_since_checkpoint >= self._checkpoint_every
            ):
                self.checkpoint()

    def _flush_deferred(self, end: bool = False) -> None:
        """Flush every shard's buffer; first failure re-raised at the end.

        A failing shard poisons its own handle (its applied suffix can no
        longer be proven durable there), but the other shards' buffers
        still flush — their in-memory state must stay provably on disk.
        """
        first_error: Exception | None = None
        for durable in self._shards:
            try:
                durable.flush_deferred(end=end)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    # ------------------------------------------------------------------
    # coordinated checkpoint

    @property
    def epoch(self) -> int:
        """Epoch of the current coordinated checkpoint set."""
        return self._epoch

    @property
    def last_seqs(self) -> list[int]:
        """Per-shard committed journal seqs."""
        return [d.last_seq for d in self._shards]

    def checkpoint(self) -> None:
        """Take a coordinated, all-or-nothing checkpoint of every shard.

        Phase 1 snapshots each shard under the next epoch's name; the
        manifest replace is the single commit point; phase 2 truncates
        journals and reclaims the old epoch's files.
        """
        with self._lock:
            new_epoch = self._epoch + 1
            name = _checkpoint_name(new_epoch)
            entries = []
            for i, durable in enumerate(self._shards):
                crc = durable.export_checkpoint(name)
                entries.append(
                    {"index": i, "last_seq": durable.last_seq, "crc32": crc}
                )
            old_epoch = self._epoch
            self._epoch = new_epoch
            self._write_manifest(entries)
            for durable in self._shards:
                durable.confirm_checkpoint()
            self._meta_journal.truncate()
            self._ops_since_checkpoint = 0
            for i in range(self.n_shards):
                old = (
                    self.directory
                    / _shard_dirname(i)
                    / _checkpoint_name(old_epoch)
                )
                old.unlink(missing_ok=True)

    def _write_manifest(self, entries: list[dict] | None = None) -> None:
        if entries is None:
            entries = [
                {"index": i, "last_seq": d.last_seq, "crc32": None}
                for i, d in enumerate(self._shards)
            ]
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "n_shards": self.n_shards,
            "epoch": self._epoch,
            "docs": self.docmap.to_list(),
            "shards": entries,
        }
        hooks.fire("manifest.before_write")
        atomic_write_text(self.directory / MANIFEST_NAME, json.dumps(manifest))
        hooks.fire("manifest.after_write")

    # ------------------------------------------------------------------
    # introspection / lifecycle

    @property
    def journal_sizes(self) -> list[int]:
        return [d.journal_size for d in self._shards]

    def recovery_reports(self):
        """The per-shard :class:`RecoveryReport` objects from opening."""
        return [d.recovery_report for d in self._shards]

    def close(self) -> None:
        super().close()
        for durable in self._shards:
            durable.close()
        self._meta_journal.close()
