"""Global tag-count catalog over the shard tag-lists.

Planning a scatter-gather join needs one thing the shards cannot answer
individually: *which shards can contribute at all*.  Every shard's
tag-list already maintains O(1) running totals per tag
(:meth:`repro.core.taglist.TagList.total_count`), so the catalog is a thin
read-through view — no duplicated state to keep consistent, reads are a
couple of dict lookups per shard.

The coordinator uses :meth:`shards_for` to prune the fan-out: a shard
where *any* joined tag has zero occurrences cannot produce a pair (both
sides of a containment pair live in the same document, hence the same
shard), so it is skipped entirely — the sharded analogue of the planner's
zero-count short-circuit in :mod:`repro.core.query`.
"""

from __future__ import annotations

__all__ = ["TagCatalog"]


class TagCatalog:
    """Read-through tag statistics across shards (see module docstring)."""

    __slots__ = ("_shards",)

    def __init__(self, shards):
        self._shards = shards

    def count_on(self, shard: int, tag: str) -> int:
        """Occurrences of ``tag`` on one shard (0 when never interned)."""
        db = self._shards[shard]
        tid = db.log.tags.tid_of(tag)
        return 0 if tid is None else db.log.taglist.total_count(tid)

    def count(self, tag: str) -> int:
        """Global occurrence count of ``tag``."""
        return sum(self.count_on(s, tag) for s in range(len(self._shards)))

    def shard_counts(self, tag: str) -> list[int]:
        """Per-shard occurrence counts, indexed by shard."""
        return [self.count_on(s, tag) for s in range(len(self._shards))]

    def shards_for(self, *tags: str) -> list[int]:
        """Shards where every tag in ``tags`` occurs at least once."""
        return [
            s
            for s in range(len(self._shards))
            if all(self.count_on(s, tag) > 0 for tag in tags)
        ]

    def tags(self) -> set[str]:
        """Union of tag names interned anywhere."""
        names: set[str] = set()
        for db in self._shards:
            registry = db.log.tags
            names.update(registry.name_of(tid) for tid in range(len(registry)))
        return names
