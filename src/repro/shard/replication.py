"""Per-shard replica chains: WAL shipping for a sharded primary.

A :class:`~repro.shard.durable.ShardedDurableDatabase` is N independent
durable journals plus a docmap meta-journal — so its replication unit is
the *shard*: each shard gets its own chain of follower
:class:`~repro.replication.node.ReplicaNode` directories
(``<root>/shard-<i>/node-<j>``) that catch up from that shard's journal
tail through the same offset-cached incremental scan the unsharded
cluster uses.  Shipping is pull-based (:meth:`ShardedReplicationCluster
.sync` tails every shard after a write burst), which matches the sharded
write path: ops land on different shard journals in arbitrary
interleavings, and the per-shard seq — not a global order — is the
replication coordinate.

The document *map* is not streamed: a follower shard replays exactly its
shard's op stream, and the map is a pure function of the docmap
meta-journal on the primary.  Parity is therefore asserted per shard:
follower text/seq must equal its primary shard's at matching seqs
(:meth:`ShardedReplicationCluster.verify_parity`).

The whole group shares one fencing term, persisted in every follower's
replication manifest; :meth:`ShardedReplicationCluster.fence_check`
refuses syncs once a higher term has been observed.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import FencedError, ReplicaDiverged
from repro.obs.metrics import METRICS
from repro.replication.node import ReplicaNode
from repro.shard.durable import ShardedDurableDatabase

__all__ = ["ShardedReplicationCluster"]

_G_SHARD_LAG = METRICS.gauge(
    "repl.shard.lag.max",
    unit="records",
    site="ShardedReplicationCluster.status",
)


class _ShardPrimaryView:
    """Primary-view adapter over one shard's :class:`DurableDatabase`.

    Satisfies the protocol :meth:`ReplicaNode.catch_up` expects
    (``journal_path`` / ``checkpoint_path`` / ``checkpoint_seq`` /
    ``last_seq`` / ``term``); the checkpoint path tracks the coordinated
    epoch naming (``checkpoint-<epoch>.json``) automatically because it
    delegates to the live durable handle.
    """

    def __init__(self, durable, cluster: "ShardedReplicationCluster"):
        self._durable = durable
        self._cluster = cluster

    @property
    def journal_path(self) -> Path:
        return self._durable.journal_path

    @property
    def checkpoint_path(self) -> Path:
        return self._durable.checkpoint_path

    @property
    def checkpoint_seq(self) -> int:
        return self._durable.checkpoint_seq

    @property
    def last_seq(self) -> int:
        return self._durable.last_seq

    @property
    def term(self) -> int:
        return self._cluster.term


class ShardedReplicationCluster:
    """Follower chains for every shard of a sharded durable primary.

    Parameters
    ----------
    primary:
        The live :class:`ShardedDurableDatabase` to replicate.
    root:
        Root for follower directories (one ``shard-<i>/node-<j>`` durable
        directory per shard per follower).
    n_followers:
        Followers per shard.
    """

    def __init__(
        self,
        primary: ShardedDurableDatabase,
        root: str | Path,
        n_followers: int = 1,
        *,
        term: int = 1,
    ):
        if n_followers < 1:
            raise ValueError("n_followers must be >= 1")
        self.primary = primary
        self.root = Path(root)
        self.term = term
        self._fenced = False
        self.views = [
            _ShardPrimaryView(durable, self) for durable in primary.shards
        ]
        # node_id encodes (shard, follower) so manifests are unambiguous.
        self.chains: list[list[ReplicaNode]] = [
            [
                ReplicaNode(
                    self.root / f"shard-{shard:02d}" / f"node-{follower}",
                    shard * n_followers + follower,
                    role="follower",
                    term=term,
                    mode=primary.mode,
                )
                for follower in range(n_followers)
            ]
            for shard in range(primary.n_shards)
        ]
        self.sync()

    # ------------------------------------------------------------------

    def fence_check(self) -> None:
        if self._fenced:
            err = FencedError(
                f"sharded replication group fenced at term {self.term}"
            )
            err.term = self.term
            raise err

    def observe_term(self, term: int) -> None:
        """A higher term fences the whole group (one failover domain)."""
        if term > self.term:
            self.term = term
            self._fenced = True

    def sync(self) -> int:
        """Tail every shard journal into its followers; returns records
        applied across all chains (O(new records) per follower)."""
        self.fence_check()
        applied = 0
        for shard, chain in enumerate(self.chains):
            view = self.views[shard]
            for node in chain:
                applied += node.catch_up(view)
        return applied

    # ------------------------------------------------------------------
    # reads / parity

    def pin_shard(self, shard: int, follower: int = 0, *, min_seq: int | None = None):
        """Pin an epoch snapshot on one shard's follower."""
        node = self.chains[shard][follower]
        if min_seq is not None and node.last_seq < min_seq:
            node.catch_up(self.views[shard])
        return node.pin(min_seq)

    def verify_parity(self) -> None:
        """Assert every follower matches its primary shard at its seq.

        A follower equal in seq must be byte-identical in text; one that
        is behind is *lagging*, never divergent — anything else raises
        :class:`~repro.errors.ReplicaDiverged`.
        """
        for shard, chain in enumerate(self.chains):
            primary_durable = self.primary.shards[shard]
            for node in chain:
                if node.last_seq > primary_durable.last_seq:
                    raise ReplicaDiverged(
                        f"shard {shard} follower {node.node_id} ran ahead: "
                        f"seq {node.last_seq} > primary "
                        f"{primary_durable.last_seq}"
                    )
                if (
                    node.last_seq == primary_durable.last_seq
                    and node.durable.db.text != primary_durable.db.text
                ):
                    raise ReplicaDiverged(
                        f"shard {shard} follower {node.node_id} diverged at "
                        f"seq {node.last_seq}"
                    )

    def status(self) -> dict:
        lags = [
            [
                self.primary.shards[shard].last_seq - node.last_seq
                for node in chain
            ]
            for shard, chain in enumerate(self.chains)
        ]
        if METRICS.enabled:
            _G_SHARD_LAG.set(max((max(l) for l in lags if l), default=0))
        return {
            "term": self.term,
            "fenced": self._fenced,
            "n_shards": self.primary.n_shards,
            "followers_per_shard": len(self.chains[0]) if self.chains else 0,
            "primary_seqs": self.primary.last_seqs,
            "follower_seqs": [
                [node.last_seq for node in chain] for chain in self.chains
            ],
            "lag": lags,
        }

    def close(self) -> None:
        for chain in self.chains:
            for node in chain:
                node.close()

    def __enter__(self) -> "ShardedReplicationCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
