"""Sharded parallel execution: partitioned super-documents (PR 5).

The paper's super-document model hangs every document off one dummy root
(Section 3), which makes *document boundaries* a natural partitioning key:
a segment can never cross the document it was inserted into, so no
structural-join pair ever spans two documents either.  This package
exploits exactly that property:

- :mod:`repro.shard.docmap` — the global document order and the
  document -> shard assignment (the routing invariant's bookkeeping);
- :mod:`repro.shard.catalog` — a global tag-count catalog over the shard
  tag-lists, used to prune scatter fan-out during planning;
- :mod:`repro.shard.executor` — per-shard query execution: an in-process
  executor (tests, N=1) and persistent worker processes with per-worker
  shard affinity over pipes;
- :mod:`repro.shard.database` — :class:`ShardedDatabase`, the coordinator:
  deterministic document -> shard routing for updates, scatter-gather
  Lazy-Join / path plans for queries, results merged by global position;
- :mod:`repro.shard.durable` — per-shard WAL directories plus the
  coordinated (all-or-nothing) checkpoint manifest.
"""

from repro.shard.catalog import TagCatalog
from repro.shard.database import ShardedDatabase, ShardElement, ShardedRemovalOutcome
from repro.shard.docmap import DocumentMap
from repro.shard.durable import ShardedDurableDatabase
from repro.shard.executor import InProcessExecutor, ProcessExecutor

__all__ = [
    "DocumentMap",
    "TagCatalog",
    "ShardedDatabase",
    "ShardElement",
    "ShardedRemovalOutcome",
    "ShardedDurableDatabase",
    "InProcessExecutor",
    "ProcessExecutor",
]
