"""The document map: global document order -> owning shard.

Every top-level document in the virtual super document is one entry; the
entry's value is the shard index that stores it.  Because each shard keeps
its own documents as the (ordered) children of its dummy root, the map is
deliberately minimal — document *lengths* and spans are never duplicated
here, they are read live from the owning shard's ER-tree.  The structural
invariant the coordinator maintains (and ``check_invariants`` asserts):

    the documents mapped to shard *s*, taken in global order, correspond
    1:1 and in order to shard *s*'s dummy-root children.

That correspondence is what makes the virtual-global <-> shard-local
coordinate translation a pair of prefix sums.
"""

from __future__ import annotations

__all__ = ["DocumentMap"]


class DocumentMap:
    """Ordered document -> shard assignment (see module docstring)."""

    __slots__ = ("_docs",)

    def __init__(self, docs: list[int] | None = None):
        self._docs: list[int] = list(docs) if docs else []

    # ------------------------------------------------------------------
    # reads

    def __len__(self) -> int:
        return len(self._docs)

    @property
    def docs(self) -> list[int]:
        """Shard index per document, in global document order (a copy)."""
        return list(self._docs)

    def shard_of(self, doc_index: int) -> int:
        """Owning shard of the document at global position ``doc_index``."""
        return self._docs[doc_index]

    def ordinal(self, doc_index: int) -> int:
        """The document's position among its shard's documents.

        Equals the index of the matching dummy-root child on the owning
        shard — the 1:1 correspondence invariant.
        """
        shard = self._docs[doc_index]
        return sum(1 for s in self._docs[:doc_index] if s == shard)

    def docs_on(self, shard: int) -> int:
        """Number of documents assigned to ``shard``."""
        return sum(1 for s in self._docs if s == shard)

    # ------------------------------------------------------------------
    # updates (called by the coordinator under its write lock)

    def insert_doc(self, doc_index: int, shard: int) -> None:
        """Record a new document at global position ``doc_index``."""
        if not 0 <= doc_index <= len(self._docs):
            raise ValueError(
                f"document index {doc_index} outside [0, {len(self._docs)}]"
            )
        self._docs.insert(doc_index, shard)

    def remove_doc(self, doc_index: int) -> int:
        """Drop the document at ``doc_index``; returns its shard."""
        return self._docs.pop(doc_index)

    # ------------------------------------------------------------------
    # persistence (the durable manifest embeds the raw list)

    def to_list(self) -> list[int]:
        return list(self._docs)

    @classmethod
    def from_list(cls, docs: list[int]) -> "DocumentMap":
        return cls(docs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DocumentMap docs={self._docs}>"
