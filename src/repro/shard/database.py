"""`ShardedDatabase` — the coordinator over N document-partitioned shards.

Each shard is a full :class:`~repro.core.database.LazyXMLDatabase` (own
ER-tree/SB-tree, tag-list, element index, compiled read path) holding a
subset of the top-level documents; the coordinator presents them as one
*virtual* super document.

**The routing invariant.**  Top-level documents are siblings under the
dummy root, and the paper's update model only ever inserts a segment
*inside* an existing document (growing that document) or *at a document
boundary* (creating a new document).  A segment therefore never crosses
the document it was inserted into — and since a containment pair ``(a,
d)`` requires ``a``'s span to enclose ``d``'s, no structural-join pair
crosses documents either.  Partitioning by document consequently
partitions both updates and join results: an update routes to exactly one
shard (bumping only that shard's version counters, so the other shards'
compiled read-path memos survive untouched), and the union of per-shard
join answers *is* the global answer.

**Coordinates.**  Updates and query results use virtual-global positions.
The coordinator translates through the document map: each shard's
dummy-root children correspond 1:1, in order, to the documents the map
assigns it, so virtual <-> shard-local is a prefix-sum rebase per
document.  Query results come back as :class:`ShardElement` records
carrying both the element's immutable local label (shard, sid, start,
end) and its derived virtual-global span; scatter-gather merges them by
global position (``(gstart, gend)`` of the descendant, then the
ancestor), giving an order independent of the shard count.

**Execution.**  Queries fan out through an executor
(:mod:`repro.shard.executor`): in-process for N=1/tests, persistent
worker processes in production, pruned by the tag-count catalog
(:mod:`repro.shard.catalog`) so shards that cannot contribute are never
contacted.  Updates apply synchronously to the coordinator's
authoritative shard and are forwarded lazily to that shard's worker.
"""

from __future__ import annotations

import heapq
import threading
from bisect import bisect_right
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import NamedTuple

from repro.core.database import LazyXMLDatabase, RemovalOutcome
from repro.core.ertree import ERNode
from repro.core.join import JoinStatistics
from repro.core.query import parse_path
from repro.core.segment import DUMMY_ROOT_SID
from repro.core.update_log import LogStats
from repro.durability.recovery import OP_KINDS, apply_op, validate_batch_ops
from repro.errors import InvalidSegmentError, QueryError, RecoveryError, ReproError
from repro.joins.stack_tree import AXIS_DESCENDANT
from repro.obs.metrics import METRICS, SIZE_BUCKETS
from repro.shard.catalog import TagCatalog
from repro.shard.docmap import DocumentMap
from repro.shard.executor import InProcessExecutor, ProcessExecutor

__all__ = ["ShardedDatabase", "ShardElement", "ShardedRemovalOutcome"]

_M_SCATTERS = METRICS.counter(
    "shard.scatter.queries", unit="queries", site="ShardedDatabase (fan-out)"
)
_H_FANOUT = METRICS.histogram(
    "shard.scatter.fanout",
    unit="shards",
    site="ShardedDatabase (shards contacted per query)",
    boundaries=SIZE_BUCKETS,
)
_M_ROUTED_OPS = METRICS.counter(
    "shard.ops_routed", unit="ops", site="ShardedDatabase._commit"
)
_G_SHARDS = METRICS.gauge(
    "shard.count", unit="shards", site="ShardedDatabase"
)

_M_CACHE_HITS = METRICS.counter(
    "shard.scatter.cache_hits",
    unit="queries",
    site="ShardedDatabase (merged-result reuse)",
)

#: JoinStatistics fields that accumulate as a maximum, not a sum.
_STAT_MAX_FIELDS = {"max_stack_depth"}

#: Distinct query shapes the scatter cache retains before being cleared.
_SCATTER_CACHE_CAP = 128

#: Merge orders — identical to the single-database result orders.
_PAIR_SORT_KEY = lambda p: (p[1].gstart, p[1].gend, p[0].gstart, p[0].gend)  # noqa: E731
_ELEMENT_SORT_KEY = lambda e: (e.gstart, e.gend)  # noqa: E731
_BINDINGS_SORT_KEY = lambda m: tuple((e.gstart, e.gend) for e in m)  # noqa: E731


def _hashable_key(*parts):
    """The parts as a cache key, or ``None`` when any part is unhashable."""
    try:
        hash(parts)
    except TypeError:
        return None
    return parts


class _DocCell:
    """Mutable holder of one document's current virtual start position.

    Every :class:`ShardElement` of a document shares its cell, so when
    documents on *other* shards grow or shrink, refreshing the cells
    (O(documents)) re-bases every cached result element at once — no
    per-element reconstruction.  A write to the element's *own* shard
    invalidates the cached rows wholesale (the shard op token moved), so
    the element's shard-local coordinates never go stale through a cell.
    """

    __slots__ = ("vstart",)

    def __init__(self, vstart: int):
        self.vstart = vstart


class ShardElement:
    """One element in a scatter-gather result.

    ``(shard, sid, start, end, level)`` is the element's immutable
    identity — its lazy local label on the owning shard; ``gstart`` /
    ``gend`` are *derived* virtual-global coordinates: an offset inside
    the owning document plus the document's shared :class:`_DocCell`.
    Deriving them keeps coordinator-cached results valid across layout
    shifts caused by updates to other shards.
    """

    __slots__ = ("shard", "sid", "start", "end", "level", "_cell",
                 "_ostart", "_oend")

    def __init__(self, shard, sid, start, end, level, cell, ostart, oend):
        self.shard = shard
        self.sid = sid
        self.start = start
        self.end = end
        self.level = level
        self._cell = cell
        self._ostart = ostart
        self._oend = oend

    @property
    def gstart(self) -> int:
        return self._cell.vstart + self._ostart

    @property
    def gend(self) -> int:
        return self._cell.vstart + self._oend

    @property
    def gspan(self) -> tuple[int, int]:
        vstart = self._cell.vstart
        return (vstart + self._ostart, vstart + self._oend)

    def __repr__(self) -> str:
        return (
            f"ShardElement(shard={self.shard}, sid={self.sid}, "
            f"gspan=({self.gstart}, {self.gend}), level={self.level})"
        )


@dataclass
class ShardedRemovalOutcome:
    """What a virtual-coordinate removal did, per touched shard."""

    outcomes: list[tuple[int, RemovalOutcome]]
    elements_removed: int


class _Doc(NamedTuple):
    """One row of the materialized document table (coordinator-internal)."""

    index: int  # global document order
    shard: int
    node: ERNode  # the document's dummy-root child on its shard
    vstart: int  # virtual-global start position
    cell: _DocCell  # shared position cell (refreshed by _doc_table)

    @property
    def vend(self) -> int:
        return self.vstart + self.node.length


class ShardedDatabase:
    """N document-partitioned shards behind one virtual super document.

    Parameters
    ----------
    n_shards:
        Number of partitions.  Each shard allocates segment ids from a
        disjoint lattice (``sid_start=1+i``, ``sid_stride=n_shards``), so
        a sid names its owning shard: ``(sid - 1) % n_shards``.
    mode, keep_text:
        Forwarded to every shard database.
    executor:
        ``"inprocess"`` (default — run queries on the authoritative
        shards), ``"process"`` (persistent worker processes), or an
        executor instance.
    shards, docmap:
        Pre-built shard databases and document map — the durable layer
        passes recovered state here.  ``shards`` may be durable wrappers;
        anything delegating reads to a :class:`LazyXMLDatabase` works.
    """

    def __init__(
        self,
        n_shards: int = 1,
        *,
        mode: str = "dynamic",
        keep_text: bool = True,
        executor="inprocess",
        shards=None,
        docmap: DocumentMap | None = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if shards is not None and len(shards) != n_shards:
            raise ValueError(
                f"got {len(shards)} shard databases for n_shards={n_shards}"
            )
        self._n = n_shards
        self._shards = list(shards) if shards is not None else [
            LazyXMLDatabase(
                mode=mode,
                keep_text=keep_text,
                sid_start=1 + i,
                sid_stride=n_shards,
            )
            for i in range(n_shards)
        ]
        self.docmap = docmap if docmap is not None else DocumentMap()
        self.catalog = TagCatalog(self._shards)
        self._doc_seq = len(self.docmap)
        self._lock = threading.RLock()
        # Scatter result cache: per-shard row lists and the merged result,
        # keyed by query shape and validated against _shard_ops tokens
        # (one monotonic counter per shard, bumped by every routed op).
        self._shard_ops = [0] * n_shards
        self._cells: dict[tuple[int, int], _DocCell] = {}
        self._scatter_cache: dict = {}
        if executor == "inprocess":
            self._executor = InProcessExecutor(self._shards)
        elif executor == "process":
            self._executor = ProcessExecutor(self._shards)
        else:
            self._executor = executor
        _G_SHARDS.set(n_shards)
        self._g_docs = [
            METRICS.gauge(
                f"shard.{i}.docs", unit="documents", site="ShardedDatabase"
            )
            for i in range(n_shards)
        ]
        self._c_ops = [
            METRICS.counter(
                f"shard.{i}.ops", unit="ops", site="ShardedDatabase._commit"
            )
            for i in range(n_shards)
        ]
        for i in range(n_shards):
            self._g_docs[i].set(self.docmap.docs_on(i))

    # ------------------------------------------------------------------
    # structure accessors

    @property
    def n_shards(self) -> int:
        return self._n

    @property
    def shards(self) -> list:
        """The authoritative shard databases (coordinator-owned)."""
        return list(self._shards)

    @property
    def executor(self):
        return self._executor

    @property
    def mode(self) -> str:
        return self._base(0).mode

    def _base(self, shard: int) -> LazyXMLDatabase:
        db = self._shards[shard]
        return getattr(db, "db", db)

    def shard_of_sid(self, sid: int) -> int:
        """Owning shard of a segment id (the sid-lattice inverse)."""
        if sid == DUMMY_ROOT_SID:
            raise ValueError("the dummy root is per-shard, not addressable")
        return (sid - 1) % self._n

    @property
    def document_length(self) -> int:
        """Virtual super-document length in characters."""
        return sum(self._base(s).document_length for s in range(self._n))

    @property
    def segment_count(self) -> int:
        return sum(self._base(s).segment_count for s in range(self._n))

    @property
    def element_count(self) -> int:
        return sum(self._base(s).element_count for s in range(self._n))

    @property
    def text(self) -> str:
        """The virtual super-document text, documents in global order."""
        parts = []
        for doc in self._doc_table():
            shard_text = self._base(doc.shard).text
            parts.append(shard_text[doc.node.gp : doc.node.end])
        return "".join(parts)

    def stats(self) -> LogStats:
        """Aggregated update-log size snapshot across shards."""
        per = [self._base(s).stats() for s in range(self._n)]
        return LogStats(
            segments=sum(p.segments for p in per),
            tag_entries=sum(p.tag_entries for p in per),
            sbtree_bytes=sum(p.sbtree_bytes for p in per),
            taglist_bytes=sum(p.taglist_bytes for p in per),
        )

    def version_counters(self, *, detail: bool = False) -> dict:
        """Summed per-structure version counters (single-DB-compatible)."""
        per = [self._base(s).version_counters(detail=detail) for s in range(self._n)]
        out = {
            key: sum(p[key] for p in per)
            for key in ("ertree", "element_index", "taglist")
        }
        if detail:
            out["shards"] = per
        return out

    def shard_stats(self) -> list[dict]:
        """Per-shard stats block (the ``stats --json`` "shards" array)."""
        worker = self._executor.worker_stats()
        out = []
        for s in range(self._n):
            db = self._base(s)
            stats = db.stats()
            out.append(
                {
                    "shard": s,
                    "documents": self.docmap.docs_on(s),
                    "characters": db.document_length,
                    "segments": stats.segments,
                    "elements": db.element_count,
                    "tags": len(db.log.tags),
                    "sbtree_bytes": stats.sbtree_bytes,
                    "taglist_bytes": stats.taglist_bytes,
                    "readpath": db.readpath.stats(),
                    "versions": db.version_counters(),
                    "worker": worker[s],
                }
            )
        return out

    def set_observed(self, flag: bool) -> None:
        for s in range(self._n):
            self._base(s).set_observed(flag)

    def prepare_for_query(self) -> None:
        for s in range(self._n):
            self._base(s).prepare_for_query()

    def close(self) -> None:
        """Shut the executor down (worker processes, if any)."""
        self._executor.close()

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the materialized document table (virtual <-> shard-local mapping)

    def _doc_table(self) -> list[_Doc]:
        """Documents in global order with live spans from the shard trees.

        Also refreshes the per-document position cells — the single
        O(documents) step that re-bases every cached result element.
        Cells are keyed by ``(shard, ordinal)``: a document insert or
        removal *on a shard* changes that shard's ordinals, but it also
        bumps that shard's op token, so the only cached rows that could
        see a reassigned cell are already invalid.
        """
        ordinals = [0] * self._n
        out: list[_Doc] = []
        vstart = 0
        for index, shard in enumerate(self.docmap.docs):
            children = self._base(shard).log.ertree.root.children
            ordinal = ordinals[shard]
            node = children[ordinal]
            ordinals[shard] += 1
            cell = self._cells.get((shard, ordinal))
            if cell is None:
                cell = self._cells[(shard, ordinal)] = _DocCell(vstart)
            else:
                cell.vstart = vstart
            out.append(_Doc(index, shard, node, vstart, cell))
            vstart += node.length
        return out

    @staticmethod
    def _cell_views(table: list[_Doc]) -> dict[int, tuple[list[int], list[_DocCell]]]:
        """Per-shard arrays for element building: child gps + their cells."""
        views: dict[int, tuple[list[int], list[_DocCell]]] = {}
        for doc in table:
            gps, cells = views.setdefault(doc.shard, ([], []))
            gps.append(doc.node.gp)
            cells.append(doc.cell)
        return views

    @staticmethod
    def _make_element(views, shard, sid, start, end, level, gs, ge) -> ShardElement:
        """Shard-local result row -> :class:`ShardElement`.

        The owning document is found by the span's *start* position — an
        element never crosses its document, but its exclusive end may
        touch the next document's start.
        """
        gps, cells = views[shard]
        i = bisect_right(gps, gs) - 1
        base = gps[i]
        return ShardElement(shard, sid, start, end, level, cells[i],
                            gs - base, ge - base)

    # ------------------------------------------------------------------
    # update routing

    def _commit(self, shard: int, op: dict, doc_change=None):
        """Apply one routed op to its authoritative shard.

        ``doc_change`` is ``("insert", doc_index)`` / ``("remove",
        doc_index)`` when the op creates/destroys a top-level document.
        :meth:`_pre_commit` runs first (the durable layer journals the
        document-map change there, *before* the shard commit); the op then
        applies through the same dispatcher crash recovery and worker
        replicas use, and is forwarded lazily to the shard's worker.
        """
        self._pre_commit(shard, op, doc_change)
        result = apply_op(self._shards[shard], op)
        if doc_change is not None:
            kind, doc_index = doc_change
            if kind == "insert":
                self.docmap.insert_doc(doc_index, shard)
            else:
                self.docmap.remove_doc(doc_index)
            self._g_docs[shard].set(self.docmap.docs_on(shard))
        if METRICS.enabled:
            _M_ROUTED_OPS.inc()
            self._c_ops[shard].inc()
        self._shard_ops[shard] += 1
        self._executor.forward(shard, op)
        return result

    def _pre_commit(self, shard: int, op: dict, doc_change) -> None:
        """Hook for the durable layer; no-op in memory-only operation."""

    def insert(
        self, fragment: str, position: int | None = None, *, validate: str = "fragment"
    ):
        """Insert ``fragment`` at virtual-global ``position``.

        A position strictly inside an existing document routes to that
        document's shard (the segment nests there — the routing
        invariant).  A position on a document boundary creates a *new*
        top-level document, placed round-robin by the deterministic
        router.  Returns the owning shard's
        :class:`~repro.core.update_log.InsertReceipt` (``gp`` is
        shard-local; the sid's lattice names the shard).
        """
        with self._lock:
            table = self._doc_table()
            total = table[-1].vend if table else 0
            if position is None:
                position = total
            if not 0 <= position <= total:
                raise InvalidSegmentError(
                    f"insert position {position} outside super document "
                    f"[0, {total}]"
                )
            doc = self._doc_at(table, position)
            op: dict = {"op": "insert", "fragment": fragment}
            if validate != "fragment":
                op["validate"] = validate
            if doc is not None:
                op["position"] = doc.node.gp + (position - doc.vstart)
                return self._commit(doc.shard, op)
            # Boundary: a new document.  Its global index is the number of
            # documents ending at or before the position.
            doc_index = sum(1 for d in table if d.vend <= position)
            shard = self._doc_seq % self._n
            self._doc_seq += 1
            ordinal = sum(1 for d in table[:doc_index] if d.shard == shard)
            children = self._base(shard).log.ertree.root.children
            op["position"] = (
                children[ordinal].gp
                if ordinal < len(children)
                else self._base(shard).document_length
            )
            return self._commit(shard, op, ("insert", doc_index))

    @staticmethod
    def _doc_at(table: list[_Doc], position: int) -> _Doc | None:
        """The document ``position`` falls strictly inside, else None."""
        if not table:
            return None
        vstarts = [doc.vstart for doc in table]
        i = bisect_right(vstarts, position) - 1
        if i < 0:
            return None
        doc = table[i]
        if doc.vstart < position < doc.vend:
            return doc
        return None

    def remove(self, position: int, length: int) -> ShardedRemovalOutcome:
        """Remove ``length`` characters at virtual-global ``position``.

        A span inside one document routes to its shard (which applies the
        single-database validation — boundary-crossing and mid-tag checks
        — against identical internal topology).  A span covering whole
        documents decomposes into per-document removals, applied in
        reverse global order so earlier sub-removals never shift later
        ones.  A span partially crossing a document boundary is refused
        with the same typed error the single database raises for its
        top-level segments.
        """
        with self._lock:
            if length <= 0:
                raise InvalidSegmentError(
                    f"removal length must be positive, got {length}"
                )
            table = self._doc_table()
            total = table[-1].vend if table else 0
            if position < 0 or position + length > total:
                raise InvalidSegmentError(
                    f"removal span [{position}, {position + length}) outside "
                    f"super document [0, {total})"
                )
            end = position + length
            inside = next(
                (
                    d
                    for d in table
                    if d.vstart <= position and end <= d.vend
                    and not (position == d.vstart and end == d.vend)
                ),
                None,
            )
            if inside is not None:
                local = inside.node.gp + (position - inside.vstart)
                outcome = self._commit(
                    inside.shard,
                    {"op": "remove", "position": local, "length": length},
                )
                return ShardedRemovalOutcome(
                    outcomes=[(inside.shard, outcome)],
                    elements_removed=outcome.elements_removed,
                )
            covered = [d for d in table if position <= d.vstart and d.vend <= end]
            if (
                not covered
                or covered[0].vstart != position
                or covered[-1].vend != end
            ):
                crossing = next(
                    d
                    for d in table
                    if not (end <= d.vstart or d.vend <= position)
                    and not (position <= d.vstart and d.vend <= end)
                )
                raise InvalidSegmentError(
                    f"removal span [{position}, {end}) crosses the boundary "
                    f"of document {crossing.index} "
                    f"[{crossing.vstart}, {crossing.vend}); remove whole "
                    "documents or spans inside one document"
                )
            outcomes: list[tuple[int, RemovalOutcome]] = []
            removed = 0
            for doc in reversed(covered):
                outcome = self._commit(
                    doc.shard,
                    {
                        "op": "remove",
                        "position": doc.node.gp,
                        "length": doc.node.length,
                    },
                    ("remove", doc.index),
                )
                outcomes.append((doc.shard, outcome))
                removed += outcome.elements_removed
            outcomes.reverse()
            return ShardedRemovalOutcome(outcomes=outcomes, elements_removed=removed)

    def remove_segment(self, sid: int) -> ShardedRemovalOutcome:
        """Remove exactly the span segment ``sid`` occupies (sid-routed)."""
        with self._lock:
            shard = self.shard_of_sid(sid)
            node = self._base(shard).log.node(sid)
            doc_change = None
            if node.parent is not None and node.parent.sid == DUMMY_ROOT_SID:
                # Removing a whole top-level document.
                ordinal = self._base(shard).log.ertree.root.children.index(node)
                seen = -1
                for doc_index, owner in enumerate(self.docmap.docs):
                    if owner == shard:
                        seen += 1
                        if seen == ordinal:
                            doc_change = ("remove", doc_index)
                            break
            outcome = self._commit(
                shard, {"op": "remove_segment", "sid": sid}, doc_change
            )
            return ShardedRemovalOutcome(
                outcomes=[(shard, outcome)],
                elements_removed=outcome.elements_removed,
            )

    def repack(self, sid: int):
        """Repack segment ``sid`` on its owning shard."""
        with self._lock:
            return self._commit(self.shard_of_sid(sid), {"op": "repack", "sid": sid})

    def compact(self, shard: int | None = None):
        """Compact every shard (or one): one segment per document."""
        with self._lock:
            targets = range(self._n) if shard is None else [shard]
            return [self._commit(s, {"op": "compact"}) for s in targets]

    def apply_batch(self, ops: list[dict]) -> list:
        """Apply a batch of virtual-coordinate op records in order.

        Each record uses the journal dialect with *virtual-global*
        positions; the coordinator routes every sub-op to its shard under
        one lock acquisition, so no reader interleaves mid-batch.  A
        sub-op whose preconditions fail against mid-batch state yields
        ``None`` in its result slot, mirroring the single-database skip
        semantics.  The durable subclass turns each shard's share of the
        batch into a single journal record (atomicity is per shard there —
        see :class:`~repro.shard.durable.ShardedDurableDatabase`).
        """
        results: list = []
        with self._lock:
            # Whole-batch validation against the virtual super-document
            # length first, so a malformed batch is rejected before any
            # sub-op applies — identically to the single database.
            validate_batch_ops(
                list(ops),
                sum(self._base(i).document_length for i in range(self._n)),
            )
            with self._batched_commits():
                for sub in ops:
                    kind = sub.get("op")
                    try:
                        if kind == "insert":
                            results.append(
                                self.insert(
                                    sub["fragment"],
                                    sub.get("position"),
                                    validate=sub.get("validate", "fragment"),
                                )
                            )
                        elif kind == "remove":
                            results.append(
                                self.remove(sub["position"], sub["length"])
                            )
                        elif kind == "remove_segment":
                            results.append(self.remove_segment(sub["sid"]))
                        elif kind == "repack":
                            results.append(self.repack(sub["sid"]))
                        elif kind == "compact":
                            results.append(self.compact())
                        else:  # pragma: no cover - caught by validation
                            raise RecoveryError(
                                f"invalid batch operation {kind!r} "
                                f"(must be one of {OP_KINDS})"
                            )
                    except RecoveryError:
                        raise
                    except ReproError:
                        # Apply-time precondition failure against
                        # mid-batch state: deterministic skip, matching
                        # the single-database batch dispatcher.
                        results.append(None)
        return results

    @contextmanager
    def _batched_commits(self):
        """Hook for the durable layer's per-shard journal batching."""
        yield

    # ------------------------------------------------------------------
    # scatter-gather queries

    def _scatter(self, targets, verb, make_args, context):
        """Fan ``verb`` out to ``targets``, honoring the context deadline."""
        if context is not None:
            context.check_deadline()
        timeout = context.remaining() if context is not None else None
        requests = [(s, verb, make_args(s)) for s in targets]
        if METRICS.enabled:
            _M_SCATTERS.inc()
            _H_FANOUT.observe(len(targets))
        trace = context.trace if context is not None else None
        if trace is None:
            return self._executor.scatter(requests, timeout=timeout)
        with trace.span(
            "shard_scatter", verb=verb, fanout=len(targets)
        ) as span:
            replies = self._executor.scatter(requests, timeout=timeout)
            span.annotate(executor=self._executor.kind)
        return replies

    # ------------------------------------------------------------------
    # the scatter result cache

    def flush_caches(self) -> None:
        """Drop the coordinator's scatter result cache.

        Correctness never requires this (entries are validated against the
        per-shard op tokens); tests use it to force cold scatter-gather
        runs through the executor.
        """
        with self._lock:
            self._scatter_cache.clear()

    def _cache_entry(self, key):
        """The cache slot for one query shape (``None`` if uncacheable)."""
        if key is None:
            return None
        entry = self._scatter_cache.get(key)
        if entry is None:
            if len(self._scatter_cache) >= _SCATTER_CACHE_CAP:
                self._scatter_cache.clear()
            entry = self._scatter_cache[key] = {"shards": {}, "merged": None}
        return entry

    def _scatter_merge(
        self,
        key,
        targets: list[int],
        verb: str,
        make_args,
        context,
        build_rows,
        sort_key,
        *,
        recompute_all: bool = False,
        fold=None,
    ) -> list:
        """Scatter ``verb`` to the *stale* targets and merge with cached rows.

        The cache has two layers, both validated against the per-shard op
        tokens (``_shard_ops``, bumped by every routed update):

        - per-shard sorted row lists — a shard whose token is unchanged is
          not contacted at all; its rows are reused as-is (their global
          coordinates track layout shifts through the document cells);
        - the merged result — when *no* target shard changed, the previous
          merge is returned outright (copied, O(rows) references).

        ``recompute_all`` forces a full fan-out (used when the caller
        wants fresh per-shard statistics); the recomputed rows still prime
        the cache.  ``fold(shard, reply)`` runs per fresh reply.
        """
        with self._lock:
            table = self._doc_table()
            entry = self._cache_entry(key)
            signature = (
                tuple(targets),
                tuple(self._shard_ops[s] for s in targets),
            )
            if (
                entry is not None
                and not recompute_all
                and entry["merged"] is not None
                and entry["merged"][0] == signature
            ):
                if METRICS.enabled:
                    _M_CACHE_HITS.inc()
                # Still runs the deadline check and records the (empty)
                # scatter in metrics and the trace.
                self._scatter([], verb, make_args, context)
                merged = list(entry["merged"][1])
                if context is not None:
                    context.charge_rows(len(merged))
                return merged
            shard_rows = entry["shards"] if entry is not None else {}
            stale = [
                s
                for s in targets
                if recompute_all
                or s not in shard_rows
                or shard_rows[s][0] != self._shard_ops[s]
            ]
            replies = self._scatter(stale, verb, make_args, context)
            views = self._cell_views(table)
            built: dict[int, list] = {}
            for shard, reply in zip(stale, replies):
                if fold is not None:
                    fold(shard, reply)
                rows = build_rows(views, shard, reply)
                rows.sort(key=sort_key)
                built[shard] = rows
                if entry is not None:
                    shard_rows[shard] = (self._shard_ops[shard], rows)
            lists = [
                built[s] if s in built else shard_rows[s][1] for s in targets
            ]
            if len(lists) == 1:
                out = list(lists[0])
            else:
                out = list(heapq.merge(*lists, key=sort_key))
            if entry is not None:
                entry["merged"] = (signature, out)
                out = list(out)
        if context is not None:
            context.check_deadline()
            context.charge_rows(len(out))
        return out

    def structural_join(
        self,
        tag_a: str,
        tag_d: str,
        axis: str = AXIS_DESCENDANT,
        *,
        algorithm: str = "lazy",
        stats: JoinStatistics | None = None,
        context=None,
        **lazy_options,
    ) -> list[tuple[ShardElement, ShardElement]]:
        """Scatter-gather ``tag_a // tag_d`` across the shards.

        Per-shard joins run the selected algorithm locally (no pair can
        cross shards — the routing invariant); the catalog prunes shards
        where either tag has zero occurrences, and the scatter cache
        prunes shards whose op token is unchanged since the last run of
        this query.  Results are merged by virtual-global position:
        ``(d.gstart, d.gend, a.gstart, a.gend)``, an order independent of
        the shard count.  ``stats`` accumulates the per-shard
        :class:`JoinStatistics` (summed; stack depth maxed) and forces a
        full fan-out, like the single database's memo bypass.
        """
        key = _hashable_key(
            "join", tag_a, tag_d, axis, algorithm,
            tuple(sorted(lazy_options.items())),
        )

        def build(views, shard, reply):
            make = self._make_element
            return [
                (
                    make(views, shard, row[0], row[1], row[2], row[3],
                         row[4], row[5]),
                    make(views, shard, row[6], row[7], row[8], row[9],
                         row[10], row[11]),
                )
                for row in reply["pairs"]
            ]

        fold = None
        if stats is not None:
            fold = lambda shard, reply: self._fold_stats(stats, reply["stats"])
        with self._lock:
            targets = self.catalog.shards_for(tag_a, tag_d)
            if not targets:
                return []
            return self._scatter_merge(
                key,
                targets,
                "join",
                lambda s: (
                    tag_a,
                    tag_d,
                    axis,
                    algorithm,
                    dict(lazy_options),
                    context.remaining() if context is not None else None,
                ),
                context,
                build,
                _PAIR_SORT_KEY,
                recompute_all=stats is not None,
                fold=fold,
            )

    @staticmethod
    def _fold_stats(stats: JoinStatistics, reply: dict) -> None:
        for field in fields(JoinStatistics):
            value = reply.get(field.name, 0)
            if field.name in _STAT_MAX_FIELDS:
                setattr(stats, field.name, max(getattr(stats, field.name), value))
            else:
                setattr(stats, field.name, getattr(stats, field.name) + value)

    def global_elements(self, tag: str, *, context=None) -> list[ShardElement]:
        """All elements of ``tag``, virtual-global spans, sorted by start."""
        def build(views, shard, reply):
            return [self._make_element(views, shard, *row) for row in reply]

        with self._lock:
            targets = self.catalog.shards_for(tag)
            if not targets:
                return []
            return self._scatter_merge(
                ("elements", tag),
                targets,
                "elements",
                lambda s: (tag,),
                context,
                build,
                _ELEMENT_SORT_KEY,
            )

    def path_query(self, expression: str, *, bindings: bool = False, context=None):
        """Scatter-gather path evaluation (``person//profile/interest``).

        A path match lives entirely inside one document, so per-shard
        evaluation unions to the global answer; shards missing any tag on
        the path are pruned.  Returns :class:`ShardElement` rows (or
        tuples of them with ``bindings=True``) merged by global position.
        """
        query = parse_path(expression)
        tags = [query.entry] + [step.tag for step in query.steps]
        if bindings:
            def build(views, shard, reply):
                return [
                    tuple(
                        self._make_element(views, shard, *row) for row in match
                    )
                    for match in reply
                ]

            sort_key = _BINDINGS_SORT_KEY
        else:
            def build(views, shard, reply):
                return [self._make_element(views, shard, *row) for row in reply]

            sort_key = _ELEMENT_SORT_KEY
        with self._lock:
            targets = self.catalog.shards_for(*tags)
            if not targets:
                return []
            return self._scatter_merge(
                ("path", expression, bindings),
                targets,
                "path",
                lambda s: (
                    expression,
                    bindings,
                    context.remaining() if context is not None else None,
                ),
                context,
                build,
                sort_key,
            )

    def twig_query(
        self,
        expression: str,
        *,
        bindings: bool = False,
        strategy: str = "auto",
        context=None,
    ):
        """Scatter-gather twig evaluation (``person[profile]//phone``).

        Like :meth:`path_query`, a twig match is rooted inside one
        document, so per-shard holistic evaluation unions to the global
        answer; shards missing any *concrete* tag of the pattern are
        pruned (wildcard steps prune nothing).  Rows merge by global
        position on the coordinator's heap.
        """
        from repro.twig.pattern import parse_twig

        query = parse_twig(expression)
        tags = sorted(query.tags())
        if bindings:
            def build(views, shard, reply):
                return [
                    tuple(
                        self._make_element(views, shard, *row) for row in match
                    )
                    for match in reply
                ]

            sort_key = _BINDINGS_SORT_KEY
        else:
            def build(views, shard, reply):
                return [self._make_element(views, shard, *row) for row in reply]

            sort_key = _ELEMENT_SORT_KEY
        with self._lock:
            # An all-wildcard pattern names no concrete tag: every shard
            # is a candidate.
            targets = (
                self.catalog.shards_for(*tags)
                if tags
                else list(range(self._n))
            )
            if not targets:
                return []
            return self._scatter_merge(
                ("twig", expression, bindings, strategy),
                targets,
                "twig",
                lambda s: (
                    expression,
                    bindings,
                    strategy,
                    context.remaining() if context is not None else None,
                ),
                context,
                build,
                sort_key,
            )

    # ------------------------------------------------------------------
    # verification

    def check_invariants(self) -> None:
        """Per-shard invariants plus the document-map correspondence."""
        for s in range(self._n):
            self._base(s).check_invariants()
            children = self._base(s).log.ertree.root.children
            mapped = self.docmap.docs_on(s)
            assert mapped == len(children), (
                f"shard {s}: document map lists {mapped} documents but the "
                f"shard has {len(children)} top-level segments"
            )
            tiled = sum(child.length for child in children)
            assert tiled == self._base(s).document_length, (
                f"shard {s}: top-level segments cover {tiled} of "
                f"{self._base(s).document_length} characters"
            )

    # ------------------------------------------------------------------
    # construction helpers

    @classmethod
    def from_database(
        cls,
        db: LazyXMLDatabase,
        n_shards: int,
        *,
        executor="inprocess",
    ) -> "ShardedDatabase":
        """Partition an existing text-mirroring database by document.

        Each top-level document's text is re-inserted into its routed
        shard (internal segmentation is not carried over — the sharded
        copy starts with one segment per document, like a compacted
        database).  Requires ``keep_text``.
        """
        if not db._keep_text:
            raise QueryError("from_database requires a keep_text=True source")
        sharded = cls(
            n_shards, mode=db.mode, keep_text=True, executor="inprocess"
        )
        text = db.text
        for top in db.log.ertree.root.children:
            sharded.insert(text[top.gp : top.end])
        if executor == "process":
            sharded._executor = ProcessExecutor(sharded._shards)
        elif executor != "inprocess":
            sharded._executor = executor
        return sharded
