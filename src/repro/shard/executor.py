"""Per-shard query executors: in-process and persistent worker processes.

Two executors share one request dispatcher (:func:`handle_request`), so a
query computes the same payload whichever executor runs it:

- :class:`InProcessExecutor` runs requests directly on the coordinator's
  authoritative shard databases — the N=1 / test / degraded path.  No
  processes, no serialization, no op forwarding (the authoritative shards
  already have every update).
- :class:`ProcessExecutor` keeps one persistent worker process per shard
  (per-worker shard affinity) connected over a pipe.  Each worker holds a
  full replica of its shard, seeded with a :func:`repro.storage.dumps`
  snapshot and kept current by **lazy op forwarding**: committed ops are
  queued per shard and shipped with the next query message, where the
  worker replays them through the same :func:`repro.durability.recovery.
  apply_op` dispatcher crash recovery uses — replica state is
  bit-identical to the authoritative shard, and a worker that never gets
  queried never pays for updates it would not read (laziness as a virtue,
  once more).

Failure model: a worker that dies mid-query fails that query fast with a
typed :class:`~repro.errors.WorkerLost`; the executor marks the worker
dead and later requests for that shard run *degraded* — in-process on the
authoritative shard — until :meth:`ProcessExecutor.respawn` reseeds a
fresh process.  A worker that is merely slow raises its own
:class:`~repro.errors.DeadlineExceeded` (the query deadline travels in
the request), which keeps the pipe protocol in sync; the coordinator only
declares the worker lost after a grace period past the deadline.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import asdict

from repro import storage
from repro.core.join import JoinStatistics
from repro.durability.recovery import apply_op
from repro.errors import ReproError, WorkerLost
from repro.obs.metrics import METRICS
from repro.service.context import QueryContext

__all__ = ["InProcessExecutor", "ProcessExecutor", "handle_request"]

_M_DEGRADED = METRICS.counter(
    "shard.degraded_queries",
    unit="requests",
    site="ProcessExecutor (dead worker, in-process fallback)",
)
_M_WORKER_LOST = METRICS.counter(
    "shard.worker_losses", unit="workers", site="ProcessExecutor._gather"
)
_M_OPS_FORWARDED = METRICS.counter(
    "shard.ops_forwarded", unit="ops", site="ProcessExecutor.forward"
)

#: Pending forwarded ops per shard before an eager flush (a ping carrying
#: the backlog) bounds coordinator-side memory.
_FLUSH_THRESHOLD = 1024

#: Extra seconds past a request's own deadline before the coordinator
#: declares a silent worker lost rather than slow.
_DEADLINE_GRACE = 0.5

#: Poll granularity while gathering without any deadline.
_IDLE_POLL = 0.25


# ----------------------------------------------------------------------
# shared request dispatch (worker process, in-process executor, fallback)


def _span_rows(db, records):
    """Rows of ``(sid, start, end, level, gstart, gend)`` for records.

    Global spans are shard-local here; the coordinator rebases them into
    virtual-global coordinates with the document map.
    """
    node_cache: dict[int, object] = {}
    rows = []
    for record in records:
        node = node_cache.get(record.sid)
        if node is None:
            node = db.log.sbtree.lookup(record.sid)
            node_cache[record.sid] = node
        rows.append(
            (
                record.sid,
                record.start,
                record.end,
                record.level,
                node.to_global(record.start),
                node.to_global(record.end, count_ties=False),
            )
        )
    return rows


def handle_request(db, verb: str, args: tuple):
    """Execute one shard-local request against ``db``; returns the payload.

    ``db`` is one shard — a plain :class:`~repro.core.database.
    LazyXMLDatabase` (or a durable wrapper delegating to one).
    """
    if verb == "join":
        tag_a, tag_d, axis, algorithm, lazy_options, timeout = args
        context = QueryContext(timeout=timeout) if timeout is not None else None
        stats = JoinStatistics()
        pairs = db.structural_join(
            tag_a,
            tag_d,
            axis,
            algorithm=algorithm,
            stats=stats,
            context=context,
            **lazy_options,
        )
        a_rows = _span_rows(db, [a for a, _ in pairs])
        d_rows = _span_rows(db, [d for _, d in pairs])
        return {
            "stats": asdict(stats),
            "pairs": [a + d for a, d in zip(a_rows, d_rows)],
        }
    if verb == "elements":
        (tag,) = args
        return [
            (e.record.sid, e.record.start, e.record.end, e.record.level, e.start, e.end)
            for e in db.global_elements(tag)
        ]
    if verb == "path":
        expression, bindings, timeout = args
        context = QueryContext(timeout=timeout) if timeout is not None else None
        result = db.path_query(expression, bindings=bindings, context=context)
        if bindings:
            return [_span_rows(db, match) for match in result]
        return _span_rows(db, result)
    if verb == "twig":
        expression, bindings, strategy, timeout = args
        context = QueryContext(timeout=timeout) if timeout is not None else None
        result = db.twig_query(
            expression, bindings=bindings, strategy=strategy, context=context
        )
        if bindings:
            return [_span_rows(db, match) for match in result]
        return _span_rows(db, result)
    if verb == "stats":
        return {
            "readpath": db.readpath.stats(),
            "versions": db.version_counters(),
        }
    if verb == "ping":
        return "pong"
    raise ValueError(f"unknown shard request verb {verb!r}")


# ----------------------------------------------------------------------
# worker process side


def _worker_main(conn, payload: str) -> None:  # pragma: no cover - subprocess
    """Loop of one shard worker: replay forwarded ops, answer requests."""
    db = storage.loads(payload)
    # The replica replays ops the authoritative shard already counted.
    db.set_observed(False)
    db.prepare_for_query()
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        req_id, verb, ops, args = message
        try:
            for op in ops:
                apply_op(db, op)
            if verb == "stop":
                conn.send((req_id, "ok", None))
                break
            result = handle_request(db, verb, args)
        except BaseException as exc:  # noqa: BLE001 - ships the error home
            conn.send((req_id, "error", type(exc).__name__, str(exc)))
        else:
            conn.send((req_id, "ok", result))
    conn.close()


def _reraise(type_name: str, message: str, shard: int):
    """Rebuild a worker-side exception as its typed local counterpart."""
    from repro import errors

    exc_type = getattr(errors, type_name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
        raise exc_type(message)
    raise WorkerLost(f"shard {shard} worker failed: {type_name}: {message}")


# ----------------------------------------------------------------------
# executors


class InProcessExecutor:
    """Runs every request synchronously on the authoritative shards."""

    def __init__(self, shards):
        self._shards = shards

    @property
    def kind(self) -> str:
        return "inprocess"

    def forward(self, shard: int, op: dict) -> None:
        """No-op: the authoritative shard already applied the op."""

    def alive(self, shard: int) -> bool:
        return True

    def query(self, shard: int, verb: str, args: tuple):
        return handle_request(self._shards[shard], verb, args)

    def scatter(self, requests, *, timeout: float | None = None):
        """Sequential fan-out: ``requests`` is ``[(shard, verb, args)]``."""
        return [self.query(shard, verb, args) for shard, verb, args in requests]

    def worker_stats(self) -> list[dict | None]:
        return [None for _ in self._shards]

    def close(self) -> None:
        pass


class _Worker:
    """Book-keeping for one shard's worker process."""

    __slots__ = ("process", "conn", "pending", "dead", "next_req")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.pending: list[dict] = []
        self.dead = False
        self.next_req = 0


class ProcessExecutor:
    """One persistent worker process per shard, scatter-gather over pipes.

    ``shards`` are the coordinator's authoritative databases: snapshots
    seed (re)spawned workers, and a dead worker's shard falls back to them
    in-process (degraded mode) so queries keep answering.
    """

    def __init__(self, shards, *, start_method: str | None = None):
        if start_method is None:
            start_method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self._ctx = multiprocessing.get_context(start_method)
        self._shards = shards
        self._workers: list[_Worker] = [
            self._spawn(shard) for shard in range(len(shards))
        ]

    @property
    def kind(self) -> str:
        return "process"

    def _snapshot(self, shard: int) -> str:
        db = self._shards[shard]
        return storage.dumps(getattr(db, "db", db))

    def _spawn(self, shard: int) -> _Worker:
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child, self._snapshot(shard)),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        process.start()
        child.close()
        return _Worker(process, parent)

    # ------------------------------------------------------------------
    # update forwarding (lazy: shipped with the next query)

    def forward(self, shard: int, op: dict) -> None:
        worker = self._workers[shard]
        if worker.dead:
            return  # respawn reseeds from the authoritative snapshot
        worker.pending.append(op)
        if METRICS.enabled:
            _M_OPS_FORWARDED.inc()
        if len(worker.pending) >= _FLUSH_THRESHOLD:
            try:
                self.query(shard, "ping", ())
            except WorkerLost:
                pass  # marked dead; later queries degrade

    # ------------------------------------------------------------------
    # health / lifecycle

    def alive(self, shard: int) -> bool:
        worker = self._workers[shard]
        return not worker.dead and worker.process.is_alive()

    def _mark_lost(self, shard: int) -> None:
        worker = self._workers[shard]
        if worker.dead:
            return
        worker.dead = True
        worker.pending.clear()
        if METRICS.enabled:
            _M_WORKER_LOST.inc()
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        if worker.process.is_alive():
            worker.process.terminate()

    def kill(self, shard: int) -> None:
        """Forcibly kill one worker (fault drills); queries then degrade."""
        worker = self._workers[shard]
        if worker.process.is_alive():
            kill = getattr(worker.process, "kill", worker.process.terminate)
            kill()
            worker.process.join(timeout=5)
        self._mark_lost(shard)

    def respawn(self, shard: int) -> None:
        """Replace a dead worker with a fresh one seeded from the
        authoritative shard snapshot (which already holds every op)."""
        old = self._workers[shard]
        if old.process.is_alive():
            old.process.terminate()
        old.process.join(timeout=5)
        self._workers[shard] = self._spawn(shard)

    def close(self) -> None:
        for shard, worker in enumerate(self._workers):
            if worker.dead or not worker.process.is_alive():
                continue
            try:
                self._request(shard, "stop", (), timeout=5.0)
            except (WorkerLost, ReproError):
                pass
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
            worker.process.join(timeout=5)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass

    # ------------------------------------------------------------------
    # request/reply

    def _request(self, shard: int, verb: str, args: tuple, *, timeout=None):
        self._send(shard, verb, args)
        return self._gather_one(shard, timeout)

    def _send(self, shard: int, verb: str, args: tuple) -> None:
        worker = self._workers[shard]
        worker.next_req += 1
        ops, worker.pending = worker.pending, []
        try:
            worker.conn.send((worker.next_req, verb, ops, args))
        except (OSError, ValueError, BrokenPipeError) as exc:
            self._mark_lost(shard)
            raise WorkerLost(f"shard {shard} worker pipe broke: {exc}") from exc

    def _gather_one(self, shard: int, timeout: float | None):
        worker = self._workers[shard]
        deadline_grace = (
            None if timeout is None else max(timeout, 0.0) + _DEADLINE_GRACE
        )
        while True:
            wait = _IDLE_POLL if deadline_grace is None else deadline_grace
            try:
                ready = worker.conn.poll(wait)
            except (OSError, EOFError) as exc:
                self._mark_lost(shard)
                raise WorkerLost(
                    f"shard {shard} worker pipe broke: {exc}"
                ) from exc
            if ready:
                break
            if not worker.process.is_alive():
                self._mark_lost(shard)
                raise WorkerLost(f"shard {shard} worker died mid-query")
            if deadline_grace is not None:
                # Alive but silent past deadline + grace: the pipe can no
                # longer be trusted to stay in sync — declare it lost.
                self._mark_lost(shard)
                raise WorkerLost(
                    f"shard {shard} worker unresponsive past deadline"
                )
        try:
            req_id, status, *rest = worker.conn.recv()
        except (EOFError, OSError) as exc:
            self._mark_lost(shard)
            raise WorkerLost(f"shard {shard} worker died mid-reply: {exc}") from exc
        if req_id < worker.next_req:
            # Reply to a request whose gather was abandoned (an earlier
            # scatter raised mid-batch); discard and keep reading.
            return self._gather_one(shard, timeout)
        if req_id > worker.next_req:
            self._mark_lost(shard)
            raise WorkerLost(f"shard {shard} worker desynced (reply {req_id})")
        if status == "error":
            _reraise(rest[0], rest[1], shard)
        return rest[0]

    def query(self, shard: int, verb: str, args: tuple, *, timeout=None):
        if self._workers[shard].dead:
            if METRICS.enabled:
                _M_DEGRADED.inc()
            return handle_request(self._shards[shard], verb, args)
        return self._request(shard, verb, args, timeout=timeout)

    def scatter(self, requests, *, timeout: float | None = None):
        """Fan a batch of ``(shard, verb, args)`` out and gather in order.

        Sends to every live worker first so the per-shard computations
        overlap; dead shards run in-process (degraded).  Results are
        returned in request order; the first failure propagates after its
        send already happened — queries are read-only, so abandoning the
        other replies is safe (each is matched by request id later).
        """
        degraded: dict[int, object] = {}
        sent: list[int] = []
        for index, (shard, verb, args) in enumerate(requests):
            if self._workers[shard].dead:
                if METRICS.enabled:
                    _M_DEGRADED.inc()
                degraded[index] = handle_request(self._shards[shard], verb, args)
            else:
                self._send(shard, verb, args)
                sent.append(index)
        results: list[object] = [None] * len(requests)
        for index, value in degraded.items():
            results[index] = value
        for index in sent:
            shard = requests[index][0]
            results[index] = self._gather_one(shard, timeout)
        return results

    def worker_stats(self) -> list[dict | None]:
        """Best-effort replica cache stats per shard (None when dead)."""
        out: list[dict | None] = []
        for shard in range(len(self._workers)):
            if self._workers[shard].dead:
                out.append(None)
                continue
            try:
                out.append(self.query(shard, "stats", (), timeout=5.0))
            except (WorkerLost, ReproError):
                out.append(None)
        return out
