"""The replication manifest: durable node identity, term, and role.

Each replication node directory holds a ``replication.json`` next to its
checkpoint and journal::

    {"format": "repro-replication-manifest", "version": 1,
     "node": 2, "term": 4, "role": "primary", "replicated_seq": 17}

The **term** is the fencing epoch of the failover protocol.  The single
invariant everything else rests on: *a node's persisted term never
decreases*.  Promotion writes ``role="primary"`` with a strictly higher
term — durably, before the node accepts a single write — so after any
crash/restart interleaving there is exactly one highest term, and an
append stamped with a lower term is refused with
:class:`~repro.errors.FencedError` by whoever sees it.  A stale primary
cannot "win back" leadership by restarting: its manifest still carries the
old term, and :func:`advance_term` refuses to move it backwards.

**replicated_seq** is the node's fully-replicated watermark: the highest
sequence number it has, *as primary*, confirmed durably applied by every
other group member.  It only matters after deposition — a rejoining
node's own journal records at or below its watermark provably reached
the whole group (including whichever follower now leads), so they need
no record-by-record verification against a journal the new primary may
have since truncated.  The watermark is conservative by construction: it
advances only on confirmed acks and is never required to be current, so
a stale value yields extra ``indeterminate`` entries in a rejoin report,
never a silently-kept lost write.

The manifest is written with the same atomic replace + directory fsync
discipline as checkpoints, so a crash mid-write leaves the old manifest
intact — a half-promoted node comes back as whatever it durably was.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.durability.atomic import atomic_write_text
from repro.errors import FencedError, ReplicationError

__all__ = [
    "REPLICATION_MANIFEST_NAME",
    "read_replication_manifest",
    "write_replication_manifest",
    "advance_term",
]

REPLICATION_MANIFEST_NAME = "replication.json"
MANIFEST_FORMAT = "repro-replication-manifest"
MANIFEST_VERSION = 1

_ROLES = ("primary", "follower")


def read_replication_manifest(directory: str | Path) -> dict | None:
    """Load and validate ``replication.json`` (None when absent)."""
    path = Path(directory) / REPLICATION_MANIFEST_NAME
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReplicationError(
            f"unreadable replication manifest {path}: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
        raise ReplicationError(f"{path} is not a replication manifest")
    if manifest.get("version") != MANIFEST_VERSION:
        raise ReplicationError(
            f"unsupported replication manifest version {manifest.get('version')!r}"
        )
    if (
        not isinstance(manifest.get("node"), int)
        or not isinstance(manifest.get("term"), int)
        or manifest["term"] < 0
        or manifest.get("role") not in _ROLES
    ):
        raise ReplicationError(f"replication manifest {path} has ill-typed fields")
    watermark = manifest.setdefault("replicated_seq", 0)
    if not isinstance(watermark, int) or watermark < 0:
        raise ReplicationError(f"replication manifest {path} has ill-typed fields")
    return manifest


def write_replication_manifest(
    directory: str | Path,
    *,
    node: int,
    term: int,
    role: str,
    replicated_seq: int | None = None,
) -> dict:
    """Atomically persist the node's ``(term, role)``; returns the manifest.

    Refuses to move the persisted term backwards (the fencing invariant) —
    use :func:`advance_term` when the intent is an explicit promotion.
    ``replicated_seq`` left as ``None`` preserves the persisted watermark
    (0 on a fresh manifest); it is never moved backwards either.
    """
    if role not in _ROLES:
        raise ReplicationError(f"unknown replication role {role!r}")
    existing = read_replication_manifest(directory)
    if existing is not None and term < existing["term"]:
        raise FencedError(
            f"refusing to lower persisted term {existing['term']} -> {term} "
            f"for node {node} (fencing invariant)"
        )
    persisted_watermark = existing["replicated_seq"] if existing is not None else 0
    if replicated_seq is None:
        replicated_seq = persisted_watermark
    manifest = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "node": node,
        "term": term,
        "role": role,
        "replicated_seq": max(replicated_seq, persisted_watermark),
    }
    atomic_write_text(
        Path(directory) / REPLICATION_MANIFEST_NAME, json.dumps(manifest)
    )
    return manifest


def advance_term(directory: str | Path, *, node: int, new_term: int, role: str) -> dict:
    """Persist a *strictly higher* term (the promotion commit point).

    Raises :class:`~repro.errors.FencedError` when ``new_term`` does not
    exceed the persisted one: a concurrent promotion already claimed an
    equal or higher term, so this node lost the race and must not lead.
    """
    existing = read_replication_manifest(directory)
    current = existing["term"] if existing is not None else 0
    if new_term <= current:
        err = FencedError(
            f"cannot advance node {node} to term {new_term}: persisted term "
            f"is already {current}"
        )
        err.term = current
        raise err
    return write_replication_manifest(directory, node=node, term=new_term, role=role)
