"""Replication channels: the transport between primary and followers.

The default :class:`InProcessChannel` is a synchronous call to a bound
handler — the same shape as the executor pipe transport (request dict in,
response dict out, exceptions propagate), so the fault drills exercise
the identical control flow a process transport would.  What makes it a
*replication* channel is the built-in partition machinery:

- :meth:`cut` / :meth:`heal` — hard partition: every call raises
  :class:`~repro.errors.ChannelCut` until healed;
- :meth:`cut_after` — partition **at a record boundary**: the next ``n``
  calls are delivered, then the channel cuts itself.  The drill matrix
  sweeps ``n`` over every boundary of a write burst, so "the stream died
  after exactly k records" is a first-class, reproducible scenario.

A cut never corrupts a record: the message either reaches the handler
whole or not at all (the sender's journal stays the source of truth, and
the follower recovers the gap from the journal tail, not the channel).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ChannelCut

__all__ = ["InProcessChannel"]


class InProcessChannel:
    """A synchronous message channel with partition fault injection."""

    def __init__(self, name: str = ""):
        self.name = name
        self._handler: Callable[[dict], dict] | None = None
        self._cut = False
        self._deliveries_left: int | None = None
        self.sent = 0  # messages actually delivered to the handler

    # ------------------------------------------------------------------
    # wiring

    def bind(self, handler: Callable[[dict], dict]) -> "InProcessChannel":
        """Attach the receiving side; returns self for chaining."""
        self._handler = handler
        return self

    # ------------------------------------------------------------------
    # transport

    def call(self, message: dict) -> dict:
        """Deliver ``message`` to the bound handler and return its reply.

        Raises :class:`~repro.errors.ChannelCut` when the channel is cut
        (or unbound); handler exceptions propagate to the caller —
        including :class:`~repro.errors.FencedError` refusals.
        """
        if self._cut:
            raise ChannelCut(f"replication channel {self.name or '?'} is cut")
        if self._deliveries_left is not None:
            if self._deliveries_left <= 0:
                self._cut = True
                self._deliveries_left = None
                raise ChannelCut(
                    f"replication channel {self.name or '?'} partitioned "
                    "at a record boundary"
                )
            self._deliveries_left -= 1
        if self._handler is None:
            raise ChannelCut(
                f"replication channel {self.name or '?'} has no bound peer"
            )
        self.sent += 1
        return self._handler(message)

    # ------------------------------------------------------------------
    # fault injection

    @property
    def is_cut(self) -> bool:
        return self._cut

    def cut(self) -> None:
        """Partition the channel: every call fails until :meth:`heal`."""
        self._cut = True

    def heal(self) -> None:
        """Restore the channel (and clear any pending ``cut_after``)."""
        self._cut = False
        self._deliveries_left = None

    def cut_after(self, deliveries: int) -> None:
        """Deliver ``deliveries`` more messages, then cut at the boundary."""
        if deliveries < 0:
            raise ValueError("deliveries must be >= 0")
        self._cut = False
        self._deliveries_left = deliveries
