"""Replication: WAL shipping, epoch-pinned follower reads, fenced failover.

The lazy update log *is* a replayable operation stream — the same insight
that makes crash recovery a journal replay makes replication a journal
shipment.  A primary streams its committed ``{"term", "seq", "op"}``
records to N followers; each follower re-commits them through its own
durable journal and serves epoch-pinned reads tied to a replicated
sequence number.  Failover is a monotonically fenced term persisted in a
replication manifest before the new primary accepts a write; a stale
primary's appends die with a typed :class:`~repro.errors.FencedError`,
and its acknowledged-but-unreplicated writes are detected and reported at
rejoin — never silently lost *or* silently kept.

Layers:

- :mod:`~repro.replication.manifest` — the durable ``(node, term, role)``
  record and its never-decreasing-term invariant;
- :mod:`~repro.replication.channel` — the record transport, with
  partition fault injection at exact record boundaries;
- :mod:`~repro.replication.node` — one participant: durable database,
  catch-up from checkpoint + journal tail, heartbeat/reconnect, rejoin;
- :mod:`~repro.replication.cluster` — the wiring: write fan-out, fencing
  on ship, promote/kill/restart/partition verbs, status.

Per-shard replica chains over this machinery live in
:mod:`repro.shard.replication`.
"""

from repro.replication.channel import InProcessChannel
from repro.replication.cluster import ReplicationCluster
from repro.replication.manifest import (
    REPLICATION_MANIFEST_NAME,
    advance_term,
    read_replication_manifest,
    write_replication_manifest,
)
from repro.replication.node import RejoinReport, ReplicaNode

__all__ = [
    "InProcessChannel",
    "ReplicationCluster",
    "ReplicaNode",
    "RejoinReport",
    "REPLICATION_MANIFEST_NAME",
    "read_replication_manifest",
    "write_replication_manifest",
    "advance_term",
]
