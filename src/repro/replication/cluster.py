"""The replication cluster: one primary, N followers, fenced failover.

:class:`ReplicationCluster` wires :class:`~repro.replication.node
.ReplicaNode` directories under one root (``node-0`` … ``node-N``) with
:class:`~repro.replication.channel.InProcessChannel` pairs, and exposes
the familiar write API (``insert`` / ``remove`` / ``remove_segment`` /
``repack`` / ``compact``) plus the failover verbs.

**Write path.**  The primary commits locally (validate → journal fsync →
apply → publish), then ships ``{"term", "seq", "op"}`` to every live
follower synchronously:

- ``applied`` / ``duplicate`` — the follower is current;
- ``gap`` — the follower missed records (healed partition): it catches
  up directly from the primary's journal tail, which contains the very
  record that was just shipped;
- :class:`~repro.errors.ChannelCut` — the record is *acked but
  unreplicated to that follower*; its seq is tracked in the per-follower
  ``missed`` set (visible in :meth:`status`) until catch-up drains it;
  once **every** follower has confirmed a seq, the primary persists it as
  its fully-replicated watermark (``replicated_seq`` in the manifest),
  which bounds the indeterminate band a later rejoin must report;
- :class:`~repro.errors.FencedError` — the follower has seen a higher
  term: the stale primary **self-fences** (refusing all further writes
  before touching its journal) and the error propagates to the caller.

**Failover.**  :meth:`promote` picks ``max(term over all nodes) + 1`` and
persists it on the target *before* it accepts a single write; the old
primary object is deliberately left untouched, so the stale-primary race
is real — its next write dies on the first follower it reaches.  When the
deposed node is restarted it :meth:`~repro.replication.node.ReplicaNode
.rejoin`\\ s: acked-but-unreplicated writes are detected by journal
comparison and *reported* (:class:`~repro.replication.node.RejoinReport`),
never silently dropped, then its history is resynced from the new primary.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.errors import ChannelCut, FencedError, ReplicationError
from repro.obs.metrics import METRICS
from repro.replication.channel import InProcessChannel
from repro.replication.manifest import read_replication_manifest
from repro.replication.node import RejoinReport, ReplicaNode
from repro.service.retry import BackoffPolicy

__all__ = ["ReplicationCluster"]

_M_SHIPPED = METRICS.counter(
    "repl.records_shipped", unit="records", site="ReplicationCluster._commit_from"
)
_M_MISSED = METRICS.counter(
    "repl.records_missed", unit="records", site="ReplicationCluster._commit_from"
)
_G_TERM = METRICS.gauge("repl.term", unit="term", site="ReplicationCluster")
_G_LAG = METRICS.gauge(
    "repl.lag.max", unit="records", site="ReplicationCluster.status"
)


def _node_dirname(node_id: int) -> str:
    return f"node-{node_id}"


class ReplicationCluster:
    """A primary plus N followers under one root directory.

    Parameters
    ----------
    root:
        Holds one ``node-<i>`` durable directory per participant.  A
        fresh root seeds node 0 as primary at term 1; an existing root is
        reopened from the nodes' replication manifests (the highest
        persisted primary term leads).
    n_followers:
        Follower count for a fresh root (reopen infers it from disk).
    primary_dir:
        Optional existing durable directory to use as node 0's home
        (``python -m repro serve --replicas`` points this at the loaded
        ``--durable`` directory, so the followers bootstrap from its
        checkpoint); defaults to ``root/node-0``.
    heartbeat_policy, sleep:
        Backoff policy and sleep function for follower heartbeats
        (injectable so drills run instantaneously).
    """

    def __init__(
        self,
        root: str | Path,
        n_followers: int = 2,
        *,
        mode: str = "dynamic",
        keep_text: bool = True,
        checkpoint_every: int | None = None,
        primary_dir: str | Path | None = None,
        heartbeat_policy: BackoffPolicy | None = None,
        sleep=time.sleep,
    ):
        if n_followers < 0:
            raise ValueError("n_followers must be >= 0")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._primary_dir = Path(primary_dir) if primary_dir is not None else None
        self._heartbeat_policy = heartbeat_policy
        self._sleep = sleep
        existing = sorted(
            int(path.name.split("-", 1)[1])
            for path in self.root.glob("node-*")
            if path.is_dir() and read_replication_manifest(path) is not None
        )
        if (
            0 not in existing
            and self._primary_dir is not None
            and read_replication_manifest(self._primary_dir) is not None
        ):
            existing = sorted([0, *existing])
        self.nodes: dict[int, ReplicaNode] = {}
        if not existing:
            node_ids = list(range(1 + n_followers))
        else:
            node_ids = existing
        for node_id in node_ids:
            role = "primary" if (not existing and node_id == 0) else "follower"
            term = 1 if (not existing and node_id == 0) else 0
            self.nodes[node_id] = ReplicaNode(
                self._node_dir(node_id),
                node_id,
                role=role,
                term=term,
                mode=mode,
                keep_text=keep_text,
                checkpoint_every=checkpoint_every,
            )
        primaries = [
            n for n in self.nodes.values() if n.role == "primary" and not n.fenced
        ]
        if not primaries:
            raise ReplicationError(
                f"no primary found under {self.root}; promote a node first"
            )
        self.primary_id = max(primaries, key=lambda n: n.term).node_id
        self._dead: set[int] = set()
        self.missed: dict[int, set[int]] = {nid: set() for nid in self.nodes}
        # One append channel into every node (any sender may use it) and
        # one heartbeat channel from every node to the current primary's
        # handler — rebound on promote.
        self.append_channels: dict[int, InProcessChannel] = {
            nid: InProcessChannel(f"append->{nid}").bind(node.handle)
            for nid, node in self.nodes.items()
        }
        self.heartbeat_channels: dict[int, InProcessChannel] = {
            nid: InProcessChannel(f"hb:{nid}->primary")
            for nid in self.nodes
        }
        self._rebind_heartbeats()
        for nid in self.follower_ids():
            self.nodes[nid].catch_up(self.primary)
        # Highest seq each node has confirmed durably applying (of the
        # current primary's lineage) — the min over the others is the
        # primary's fully-replicated watermark.
        self._acked: dict[int, int] = {
            nid: node.last_seq for nid, node in self.nodes.items()
        }
        if METRICS.enabled:
            _G_TERM.set(self.primary.term)

    # ------------------------------------------------------------------
    # topology

    def _node_dir(self, node_id: int) -> Path:
        if node_id == 0 and self._primary_dir is not None:
            return self._primary_dir
        return self.root / _node_dirname(node_id)

    @property
    def primary(self) -> ReplicaNode:
        return self.nodes[self.primary_id]

    def follower_ids(self) -> list[int]:
        return [
            nid
            for nid in sorted(self.nodes)
            if nid != self.primary_id and nid not in self._dead
        ]

    def _rebind_heartbeats(self) -> None:
        handler = self.primary.handle
        for channel in self.heartbeat_channels.values():
            channel.bind(handler)

    # ------------------------------------------------------------------
    # write API (mirrors DurableDatabase's journaled operations)

    def insert(self, fragment: str, position: int | None = None, *, validate: str = "fragment"):
        if position is None:
            position = self.primary.durable.db.document_length
        op = {"op": "insert", "fragment": fragment, "position": position}
        if validate != "fragment":
            op["validate"] = validate
        return self._commit(op)

    def remove(self, position: int, length: int):
        return self._commit({"op": "remove", "position": position, "length": length})

    def remove_segment(self, sid: int):
        return self._commit({"op": "remove_segment", "sid": sid})

    def repack(self, sid: int):
        return self._commit({"op": "repack", "sid": sid})

    def compact(self):
        return self._commit({"op": "compact"})

    def _commit(self, op: dict):
        return self.commit_from(self.primary_id, op)

    def commit_from(self, node_id: int, op: dict):
        """Commit + ship ``op`` from ``node_id``'s point of view.

        The normal write path uses the current primary; the fault drills
        call this on a deposed node to race a stale primary against the
        new term.
        """
        sender = self.nodes[node_id]
        result = sender.local_commit(op)
        seq = sender.last_seq
        message = {
            "kind": "append",
            "term": sender.term,
            "node": node_id,
            "record": {"seq": seq, "op": dict(op)},
        }
        shipped = 0
        for other_id, channel in self.append_channels.items():
            if other_id == node_id or other_id in self._dead:
                continue
            try:
                reply = channel.call(message)
            except ChannelCut:
                self.missed[other_id].add(seq)
                if METRICS.enabled:
                    _M_MISSED.inc()
                continue
            except FencedError as exc:
                sender.fence(getattr(exc, "term", None))
                raise
            if reply["status"] == "gap":
                # Healed partition: the tail (including this record) is in
                # the sender's journal; pull it directly.
                self.nodes[other_id].catch_up(sender)
            shipped += 1
            applied_upto = self.nodes[other_id].last_seq
            self._note_acked(other_id, applied_upto)
            self.missed[other_id] = {
                s for s in self.missed[other_id] if s > applied_upto
            }
        if METRICS.enabled and shipped:
            _M_SHIPPED.inc(shipped)
        if node_id == self.primary_id:
            # The ack map only tracks the current primary's lineage, so a
            # stale sender must never advance its watermark from it.
            watermark = min(
                (self._acked.get(o, 0) for o in self.nodes if o != node_id),
                default=seq,
            )
            sender.note_replicated(min(watermark, seq))
        return result

    def _note_acked(self, node_id: int, seq: int) -> None:
        previous = self._acked.get(node_id, 0)
        if seq > previous:
            self._acked[node_id] = seq

    # ------------------------------------------------------------------
    # reads

    def pin_follower(self, node_id: int | None = None, *, min_seq: int | None = None):
        """Pin an epoch snapshot on a live follower (primary as fallback).

        With ``min_seq``, a lagging follower first catches up from the
        primary; :class:`~repro.errors.LaggingReplica` propagates only
        when it still cannot reach the sequence.
        """
        if node_id is None:
            followers = self.follower_ids()
            node_id = followers[0] if followers else self.primary_id
        node = self.nodes[node_id]
        if node_id in self._dead:
            raise ReplicationError(f"node {node_id} is down")
        if (
            min_seq is not None
            and node.last_seq < min_seq
            and self.primary_id not in self._dead
        ):
            node.catch_up(self.primary)
            self._note_acked(node_id, node.last_seq)
        return node.pin(min_seq)

    # ------------------------------------------------------------------
    # failover / fault verbs

    def promote(self, node_id: int) -> ReplicaNode:
        """Promote ``node_id`` to primary under a strictly higher term."""
        if node_id in self._dead:
            raise ReplicationError(f"cannot promote dead node {node_id}")
        node = self.nodes[node_id]
        new_term = max(n.term for n in self.nodes.values()) + 1
        if node_id != self.primary_id and self.primary_id not in self._dead:
            # Best-effort catch-up from the outgoing primary so committed,
            # replicated history survives the switch.
            try:
                node.catch_up(self.primary)
            except ReplicationError:
                pass
        node.promote(new_term)
        self.primary_id = node_id
        # Acks and missed seqs recorded past the new primary's tail
        # belong to the old lineage; clamp so they can never advance the
        # new watermark or linger as phantom unreplicated entries.
        for nid in self._acked:
            self._acked[nid] = min(self._acked[nid], node.last_seq)
        for nid in self.missed:
            self.missed[nid] = {s for s in self.missed[nid] if s <= node.last_seq}
        self._rebind_heartbeats()
        if METRICS.enabled:
            _G_TERM.set(new_term)
        return node

    def kill(self, node_id: int) -> None:
        """Simulate process death of a node (no checkpoint, fds dropped)."""
        self.nodes[node_id].crash()
        self._dead.add(node_id)
        self.append_channels[node_id].cut()
        self.heartbeat_channels[node_id].cut()

    def restart(self, node_id: int) -> RejoinReport | None:
        """Recover a killed node from its directory and re-join the group.

        A restarted deposed primary — or any node whose journal runs past
        the current primary's *or conflicts with it at a shared seq*
        (``diverges_from`` compares record content, catching a fork whose
        ``last_seq`` happens to equal the primary's) — goes through
        :meth:`~repro.replication.node.ReplicaNode.rejoin`, returning the
        lost-write report; a plain lagging follower just catches up
        (returns ``None``).
        """
        if node_id not in self._dead:
            raise ReplicationError(f"node {node_id} is not down")
        node = ReplicaNode(self._node_dir(node_id), node_id)
        self.nodes[node_id] = node
        self._dead.discard(node_id)
        self.append_channels[node_id] = InProcessChannel(
            f"append->{node_id}"
        ).bind(node.handle)
        self.heartbeat_channels[node_id] = InProcessChannel(
            f"hb:{node_id}->primary"
        ).bind(self.primary.handle)
        report: RejoinReport | None = None
        if node_id == self.primary_id:
            # The primary came back and was never deposed.
            self._rebind_heartbeats()
        elif self.primary_id in self._dead:
            # No live primary to compare against: the node comes back
            # as-is and converges after the next promote/heal — its
            # journal must not be read off a crashed primary's disk.
            pass
        elif (
            node.role == "primary"
            or node.last_seq > self.primary.last_seq
            or node.diverges_from(self.primary)
        ):
            report = node.rejoin(self.primary)
            self._note_acked(node_id, node.last_seq)
        else:
            node.catch_up(self.primary)
            self._note_acked(node_id, node.last_seq)
        self.missed[node_id] = {
            s for s in self.missed.get(node_id, set()) if s > node.last_seq
        }
        return report

    def partition(self, node_id: int, after: int | None = None) -> None:
        """Cut the append stream to ``node_id`` (optionally after N more
        deliveries — a partition at an exact record boundary)."""
        channel = self.append_channels[node_id]
        if after is None:
            channel.cut()
        else:
            channel.cut_after(after)
        self.heartbeat_channels[node_id].cut()

    def heal(self, node_id: int) -> None:
        """Heal the partition and let the follower catch up.

        Catch-up is skipped while the primary is down: it reads the
        primary's journal file directly, which a real transport could not
        do off a crashed process — pulling acked-but-unreplicated records
        from a dead primary's disk would mask lost-write scenarios.  The
        follower converges after the next promote/restart instead.
        """
        self.append_channels[node_id].heal()
        self.heartbeat_channels[node_id].heal()
        if (
            node_id not in self._dead
            and node_id != self.primary_id
            and self.primary_id not in self._dead
        ):
            node = self.nodes[node_id]
            node.catch_up(self.primary)
            self._note_acked(node_id, node.last_seq)
            self.missed[node_id] = {
                s for s in self.missed[node_id] if s > node.last_seq
            }

    def heartbeat_all(self) -> dict[int, dict]:
        """Each live follower heartbeats the primary (backoff through
        cuts), then catches up if the reply shows it is behind."""
        replies: dict[int, dict] = {}
        for nid in self.follower_ids():
            node = self.nodes[nid]
            reply = node.heartbeat(
                self.heartbeat_channels[nid],
                policy=self._heartbeat_policy,
                sleep=self._sleep,
            )
            if reply["last_seq"] > node.last_seq and self.primary_id not in self._dead:
                node.catch_up(self.primary)
                self._note_acked(nid, node.last_seq)
                self.missed[nid] = {
                    s for s in self.missed[nid] if s > node.last_seq
                }
            replies[nid] = reply
        return replies

    # ------------------------------------------------------------------
    # introspection / lifecycle

    def status(self) -> dict:
        primary = self.primary
        lags = {
            nid: primary.last_seq - self.nodes[nid].last_seq
            for nid in self.nodes
            if nid != self.primary_id
        }
        if METRICS.enabled:
            _G_LAG.set(max(lags.values()) if lags else 0)
        return {
            "primary": self.primary_id,
            "term": primary.term,
            "last_seq": primary.last_seq,
            "dead": sorted(self._dead),
            "lag": lags,
            "unreplicated": {
                nid: sorted(seqs) for nid, seqs in self.missed.items() if seqs
            },
            "nodes": {nid: node.status() for nid, node in self.nodes.items()},
        }

    def checkpoint(self) -> None:
        """Checkpoint the primary (followers fold their own journals on
        resync or via their ``checkpoint_every``)."""
        self.primary.durable.checkpoint()

    def close(self) -> None:
        for nid, node in self.nodes.items():
            if nid not in self._dead:
                node.close()

    def __enter__(self) -> "ReplicationCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
