"""A replication node: durable database + term/role + epoch-pinned reads.

One :class:`ReplicaNode` is one participant in a replication group, wrapping:

- a :class:`~repro.durability.database.DurableDatabase` — the node's own
  journal and checkpoint (a follower *re-commits* every shipped record
  through the normal validate → journal-fsync → apply protocol, so its
  on-disk history mirrors the primary's with aligned sequence numbers and
  survives its own crashes);
- a replication manifest (:mod:`repro.replication.manifest`) persisting
  the node's fencing ``term`` and ``role``;
- an :class:`~repro.service.snapshot.EpochManager` publishing each applied
  record as a new epoch, so reads are pinned snapshots tied to a
  replicated sequence number (``seq_at(epoch)``) — the read-consistency
  guarantee is "this answer is the state at primary seq N", not "whatever
  the follower happened to hold".

**Catch-up** (:meth:`catch_up`) is incremental: the node tails the
primary's journal from a cached byte offset
(:func:`~repro.durability.wal.tail_journal`), doing O(new records) work
per poll.  The offset cache is keyed by the primary's ``checkpoint_seq``
— a checkpoint truncates the journal, so a changed ``checkpoint_seq``
invalidates the offset (reset to 0).  A follower that fell behind a
checkpoint (``last_seq < checkpoint_seq``) cannot be served by any
journal tail and performs a **full resync**: discard the local journal,
atomically install a copy of the primary's checkpoint, reopen through
recovery, then tail the rest.  The journal is removed *first* — in the
rejoin path it can hold records with seqs past the installed
checkpoint's, which recovery would otherwise replay on top of it,
silently resurrecting the very writes the rejoin report discarded.

**Fencing**: every inbound message carries the sender's term.  A lower
term is refused with :class:`~repro.errors.FencedError` *before* the
record touches the journal; a higher term is adopted and persisted (a
deposed primary demotes itself to follower on the spot).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.durability.atomic import atomic_write_text
from repro.durability.database import DurableDatabase
from repro.durability.wal import read_journal, tail_journal
from repro.errors import (
    ChannelCut,
    FencedError,
    LaggingReplica,
    ReplicaDiverged,
)
from repro.obs.metrics import METRICS
from repro.replication.manifest import (
    advance_term,
    read_replication_manifest,
    write_replication_manifest,
)
from repro.service.retry import BackoffPolicy, retry_with_backoff
from repro.service.snapshot import EpochManager, Snapshot

__all__ = ["ReplicaNode", "RejoinReport"]

_M_FENCED = METRICS.counter(
    "repl.fenced_appends", unit="refusals", site="ReplicaNode.handle"
)
_M_CATCHUP = METRICS.counter(
    "repl.catchup_records", unit="records", site="ReplicaNode.catch_up"
)
_M_RESYNCS = METRICS.counter(
    "repl.resyncs", unit="resyncs", site="ReplicaNode._full_resync"
)
_M_HEARTBEATS = METRICS.counter(
    "repl.heartbeats", unit="messages", site="ReplicaNode.heartbeat"
)
_M_RECONNECTS = METRICS.counter(
    "repl.reconnects", unit="retries", site="ReplicaNode.heartbeat"
)
_M_LOST = METRICS.counter(
    "repl.lost_writes", unit="records", site="ReplicaNode.rejoin"
)
_M_INDETERMINATE = METRICS.counter(
    "repl.indeterminate_writes", unit="records", site="ReplicaNode.rejoin"
)

#: Epoch→seq entries kept per node (old epochs' pins drain quickly).
_EPOCH_MAP_KEEP = 64


@dataclass
class RejoinReport:
    """What a deposed primary found when rejoining under a new term.

    ``lost_seqs``/``lost_ops`` are the acknowledged-but-unreplicated
    writes: records the old primary journaled (and acked to its client)
    that the new primary's history provably does not contain — either
    past the new primary's ``last_seq``, or conflicting at a matching
    seq in its journal.

    ``indeterminate_seqs``/``indeterminate_ops`` are own records whose
    seqs the new primary has folded into its checkpoint (journal
    truncated) and that lie above this node's fully-replicated watermark
    (``replicated_seq``): they can no longer be verified record-by-record,
    so they are reported rather than silently presumed replicated — the
    new primary may have committed its *own* conflicting history at those
    seqs before checkpointing.

    Detection is the contract; both classes are reported, then discarded
    by the resync.  ``reported_seqs`` unions them.
    """

    node: int
    new_term: int
    lost_seqs: list[int] = field(default_factory=list)
    lost_ops: list[dict] = field(default_factory=list)
    indeterminate_seqs: list[int] = field(default_factory=list)
    indeterminate_ops: list[dict] = field(default_factory=list)
    resynced: bool = False

    @property
    def lost(self) -> int:
        return len(self.lost_seqs)

    @property
    def reported_seqs(self) -> list[int]:
        """Every seq the rejoin could not prove replicated (lost ∪ indeterminate)."""
        return sorted({*self.lost_seqs, *self.indeterminate_seqs})


class ReplicaNode:
    """One replication participant (see module docstring).

    Any object with ``journal_path``, ``checkpoint_path``,
    ``checkpoint_seq``, ``last_seq`` and ``term`` attributes can serve as
    the *primary view* for :meth:`catch_up`/:meth:`rejoin` — a live
    :class:`ReplicaNode` qualifies, as does the per-shard adapter in
    :mod:`repro.shard.replication`.
    """

    def __init__(
        self,
        directory: str | Path,
        node_id: int,
        *,
        role: str = "follower",
        term: int = 0,
        mode: str = "dynamic",
        keep_text: bool = True,
        checkpoint_every: int | None = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.node_id = node_id
        manifest = read_replication_manifest(self.directory)
        if manifest is None:
            manifest = write_replication_manifest(
                self.directory, node=node_id, term=term, role=role
            )
        self.term: int = manifest["term"]
        self.role: str = manifest["role"]
        self.replicated_seq: int = manifest["replicated_seq"]
        self._fenced = False
        self._mode = mode
        self._keep_text = keep_text
        self._checkpoint_every = checkpoint_every
        self.durable = DurableDatabase(
            self.directory,
            mode=mode,
            keep_text=keep_text,
            checkpoint_every=checkpoint_every,
        )
        self._tail_offset = 0
        self._tail_ckpt_seq: int | None = None
        self.heartbeats = 0
        self.reconnects = 0
        self.resyncs = 0
        self.fenced_appends = 0
        self._build_epochs()

    def _build_epochs(self) -> None:
        self.epochs = EpochManager(self.durable.db)
        self._epoch_seqs: dict[int, int] = {
            self.epochs.current_epoch: self.durable.last_seq
        }
        self._published_seq = self.durable.last_seq

    # ------------------------------------------------------------------
    # durable-state passthrough (the primary-view protocol)

    @property
    def last_seq(self) -> int:
        return self.durable.last_seq

    @property
    def checkpoint_seq(self) -> int:
        return self.durable.checkpoint_seq

    @property
    def journal_path(self) -> Path:
        return self.durable.journal_path

    @property
    def checkpoint_path(self) -> Path:
        return self.durable.checkpoint_path

    @property
    def fenced(self) -> bool:
        return self._fenced

    # ------------------------------------------------------------------
    # primary side

    def local_commit(self, op: dict):
        """Commit ``op`` locally as the primary (journal + apply + publish).

        Refused with :class:`~repro.errors.FencedError` — before touching
        the journal — once the node is fenced or is not the primary.
        """
        if self._fenced or self.role != "primary":
            err = FencedError(
                f"node {self.node_id} (term {self.term}, role {self.role}"
                f"{', fenced' if self._fenced else ''}) cannot accept writes"
            )
            err.term = self.term
            raise err
        result = self.durable.commit(op)
        self._publish([op])
        return result

    def fence(self, observed_term: int | None = None) -> None:
        """Stop accepting writes: a higher term exists somewhere."""
        self._fenced = True
        if observed_term is not None and observed_term > self.term:
            # Learn (in memory) of the term that fenced us; the durable
            # manifest is rewritten at rejoin, as a follower.
            self.term = observed_term

    def note_replicated(self, seq: int) -> None:
        """Advance the persisted fully-replicated watermark to ``seq``.

        Called by the shipping layer once every other group member has
        confirmed durably applying everything up to ``seq``.  Monotone
        and conservative: a missed advance only widens the indeterminate
        band a later :meth:`rejoin` reports, never hides a lost write.
        """
        if seq <= self.replicated_seq:
            return
        self.replicated_seq = seq
        write_replication_manifest(
            self.directory,
            node=self.node_id,
            term=self.term,
            role=self.role,
            replicated_seq=seq,
        )

    def promote(self, new_term: int) -> None:
        """Become primary at ``new_term`` — persisted before any write.

        The durable manifest write is the promotion commit point:
        :func:`~repro.replication.manifest.advance_term` refuses a term
        that does not exceed the persisted one, so two racing promotions
        cannot both lead.
        """
        advance_term(
            self.directory, node=self.node_id, new_term=new_term, role="primary"
        )
        self.term = new_term
        self.role = "primary"
        self._fenced = False

    # ------------------------------------------------------------------
    # follower side: the channel handler

    def handle(self, message: dict) -> dict:
        """Handle one replication message (bound to a channel).

        Term check first: a stale sender is refused with
        :class:`~repro.errors.FencedError` regardless of message kind, a
        newer term is adopted (and persisted) on the spot.
        """
        sender_term = message.get("term", 0)
        if sender_term < self.term:
            self.fenced_appends += 1
            if METRICS.enabled:
                _M_FENCED.inc()
            err = FencedError(
                f"node {self.node_id} refuses {message.get('kind')} from "
                f"term {sender_term}: current term is {self.term}"
            )
            err.term = self.term
            raise err
        if sender_term > self.term:
            self.term = sender_term
            if self.role == "primary":
                self.role = "follower"  # deposed: a newer leader exists
            self._fenced = False
            write_replication_manifest(
                self.directory, node=self.node_id, term=self.term, role=self.role
            )
        kind = message.get("kind")
        if kind == "heartbeat":
            self.heartbeats += 1
            if METRICS.enabled:
                _M_HEARTBEATS.inc()
            return {
                "status": "ok",
                "term": self.term,
                "last_seq": self.last_seq,
                "checkpoint_seq": self.checkpoint_seq,
            }
        if kind == "append":
            return self._apply_record(message["record"])
        raise ReplicaDiverged(f"unknown replication message kind {kind!r}")

    def _apply_record(self, record: dict) -> dict:
        seq = record["seq"]
        if seq <= self.durable.last_seq:
            return {"status": "duplicate", "last_seq": self.last_seq}
        if seq != self.durable.last_seq + 1:
            # Records were lost on the way (cut channel, missed while
            # down): refuse to apply out of order, ask for catch-up.
            return {"status": "gap", "last_seq": self.last_seq}
        op = record["op"]
        self.durable.commit(op)
        self._publish([op])
        return {"status": "applied", "last_seq": self.last_seq}

    # ------------------------------------------------------------------
    # epoch-pinned reads

    def _publish(self, ops: list[dict]) -> int:
        epoch = self.epochs.publish([dict(op) for op in ops])
        self._epoch_seqs[epoch] = self.durable.last_seq
        self._published_seq = self.durable.last_seq
        while len(self._epoch_seqs) > _EPOCH_MAP_KEEP:
            del self._epoch_seqs[min(self._epoch_seqs)]
        return epoch

    def pin(self, min_seq: int | None = None) -> Snapshot:
        """Pin a read snapshot, optionally demanding replicated seq ≥ N.

        Raises :class:`~repro.errors.LaggingReplica` when the node has not
        published ``min_seq`` yet — the caller retries after catch-up
        rather than silently reading stale state.
        """
        if min_seq is not None and self._published_seq < min_seq:
            raise LaggingReplica(
                f"node {self.node_id} has published seq {self._published_seq}"
                f" < required {min_seq}; catch up and retry"
            )
        return self.epochs.pin()

    def seq_at(self, epoch: int) -> int | None:
        """The replicated seq a published epoch corresponds to."""
        return self._epoch_seqs.get(epoch)

    # ------------------------------------------------------------------
    # catch-up

    def catch_up(self, view) -> int:
        """Apply the primary's journal tail; returns records applied.

        ``view`` is any primary-view object (see class docstring).  Work
        is O(new records): the journal is read from the cached byte
        offset, which is reset whenever the primary's ``checkpoint_seq``
        changes (its journal was truncated).
        """
        ckpt_seq = view.checkpoint_seq
        if self.durable.last_seq < ckpt_seq:
            self._full_resync(view)
            ckpt_seq = view.checkpoint_seq
        if self._tail_ckpt_seq != ckpt_seq:
            self._tail_offset = 0
            self._tail_ckpt_seq = ckpt_seq
        scan = tail_journal(view.journal_path, self._tail_offset)
        applied = 0
        ops: list[dict] = []
        for record in scan.records:
            seq = record["seq"]
            if seq <= self.durable.last_seq:
                continue
            if seq != self.durable.last_seq + 1:
                raise ReplicaDiverged(
                    f"node {self.node_id} at seq {self.durable.last_seq} "
                    f"cannot apply journal record seq {seq}: history hole"
                )
            op = {key: value for key, value in record.items() if key != "seq"}
            self.durable.commit(op)
            ops.append(op)
            applied += 1
        self._tail_offset = scan.valid_bytes
        if ops:
            self._publish(ops)
            if METRICS.enabled:
                _M_CATCHUP.inc(applied)
        return applied

    def _full_resync(self, view) -> None:
        """Discard local history, install the primary's checkpoint, reopen.

        The local journal is unlinked *before* the checkpoint install: in
        the rejoin path it holds the discarded fork — records whose seqs
        can run past the installed checkpoint's ``last_seq`` — and a
        reopen with both in place would replay that fork on top of the
        new checkpoint, silently resurrecting the writes the rejoin
        report just declared lost (and pushing ``last_seq`` past the
        primary's, so catch-up would mistake real future records for
        duplicates).  Crash-safe ordering: a crash between the unlink and
        the install leaves the node on its own previous checkpoint — a
        clean older state whose next catch-up simply resyncs again.  The
        post-reopen local checkpoint folds the installed state and
        recreates an empty journal.
        """
        self.resyncs += 1
        if METRICS.enabled:
            _M_RESYNCS.inc()
        self.epochs.close()
        self.durable.close()
        (self.directory / "journal.wal").unlink(missing_ok=True)
        ckpt_path = Path(view.checkpoint_path)
        if ckpt_path.exists():
            atomic_write_text(
                self.directory / "checkpoint.json",
                ckpt_path.read_text(encoding="utf-8"),
            )
        else:
            # The primary has no checkpoint: start over from scratch.
            (self.directory / "checkpoint.json").unlink(missing_ok=True)
        self.durable = DurableDatabase(
            self.directory,
            mode=self._mode,
            keep_text=self._keep_text,
            checkpoint_every=self._checkpoint_every,
        )
        self.durable.checkpoint()
        self._tail_offset = 0
        self._tail_ckpt_seq = None
        self._build_epochs()

    # ------------------------------------------------------------------
    # heartbeat / reconnect

    def heartbeat(
        self,
        channel,
        *,
        policy: BackoffPolicy | None = None,
        sleep=time.sleep,
    ) -> dict:
        """Send one heartbeat over ``channel``, reconnecting through cuts.

        A cut channel is retried with capped-jittered backoff
        (:class:`~repro.service.admission.BackoffPolicy`); the final
        :class:`~repro.errors.ChannelCut` propagates when the policy is
        exhausted.  Adopts a higher term from the reply.
        """
        tries = 0

        def attempt() -> dict:
            nonlocal tries
            tries += 1
            return channel.call(
                {"kind": "heartbeat", "term": self.term, "node": self.node_id}
            )

        reply = retry_with_backoff(
            attempt, policy=policy, retry_on=(ChannelCut,), sleep=sleep
        )
        if tries > 1:
            self.reconnects += tries - 1
            if METRICS.enabled:
                _M_RECONNECTS.inc(tries - 1)
        self.heartbeats += 1
        if METRICS.enabled:
            _M_HEARTBEATS.inc()
        peer_term = reply.get("term", 0)
        if peer_term > self.term:
            self.term = peer_term
            if self.role == "primary":
                self.role = "follower"
            write_replication_manifest(
                self.directory, node=self.node_id, term=self.term, role=self.role
            )
        return reply

    # ------------------------------------------------------------------
    # rejoin after deposition

    def rejoin(self, view) -> RejoinReport:
        """Rejoin under a newer primary, reporting lost acked writes.

        Classifies every record in the node's own journal against the new
        primary's history:

        - **kept** — it matches the primary's journal at the same seq, or
          its seq is at or below this node's persisted fully-replicated
          watermark (``replicated_seq``): the write provably reached the
          whole group, including whichever node now leads;
        - **lost** — it lies past the primary's ``last_seq``, or conflicts
          with the primary's record at a shared seq: acknowledged here,
          never replicated;
        - **indeterminate** — its seq was folded into the primary's
          checkpoint (journal truncated) while above the watermark, so it
          cannot be verified record-by-record — the new primary may have
          committed its own conflicting history there before
          checkpointing.

        Lost and indeterminate records are **reported** (never silently
        dropped), then the local history is discarded by a full resync.
        """
        theirs = {
            record["seq"]: {
                key: value for key, value in record.items() if key != "seq"
            }
            for record in read_journal(view.journal_path).records
        }
        lost_seqs: list[int] = []
        lost_ops: list[dict] = []
        indeterminate_seqs: list[int] = []
        indeterminate_ops: list[dict] = []
        for record in read_journal(self.durable.journal_path).records:
            seq = record["seq"]
            op = {key: value for key, value in record.items() if key != "seq"}
            if seq in theirs:
                if theirs[seq] != op:
                    lost_seqs.append(seq)
                    lost_ops.append(op)
            elif seq > view.last_seq:
                lost_seqs.append(seq)
                lost_ops.append(op)
            elif seq > self.replicated_seq:
                # Folded into the primary's checkpoint: unverifiable.
                indeterminate_seqs.append(seq)
                indeterminate_ops.append(op)
        if METRICS.enabled:
            if lost_seqs:
                _M_LOST.inc(len(lost_seqs))
            if indeterminate_seqs:
                _M_INDETERMINATE.inc(len(indeterminate_seqs))
        self.role = "follower"
        self.term = max(self.term, view.term)
        self._fenced = False
        write_replication_manifest(
            self.directory, node=self.node_id, term=self.term, role=self.role
        )
        self._full_resync(view)
        self.catch_up(view)
        return RejoinReport(
            node=self.node_id,
            new_term=view.term,
            lost_seqs=lost_seqs,
            lost_ops=lost_ops,
            indeterminate_seqs=indeterminate_seqs,
            indeterminate_ops=indeterminate_ops,
            resynced=True,
        )

    def diverges_from(self, view) -> bool:
        """True when this node's journal conflicts with ``view``'s history.

        Catches forks invisible to seq comparison alone — in particular a
        node whose ``last_seq`` *equals* the primary's but whose records
        differ (it caught up from a stale primary that wrote the same
        number of records as the new one).  A record past the view's
        ``last_seq`` or a differing op at a shared seq is a fork; records
        already folded into the view's checkpoint are not comparable here
        (:meth:`rejoin` classifies those as indeterminate).
        """
        theirs = {
            record["seq"]: {
                key: value for key, value in record.items() if key != "seq"
            }
            for record in read_journal(view.journal_path).records
        }
        for record in read_journal(self.durable.journal_path).records:
            seq = record["seq"]
            if seq > view.last_seq:
                return True
            op = {key: value for key, value in record.items() if key != "seq"}
            if seq in theirs and theirs[seq] != op:
                return True
        return False

    # ------------------------------------------------------------------
    # lifecycle

    def crash(self) -> None:
        """Simulate process death: drop file handles, no checkpoint."""
        self.epochs.close()
        self.durable.close()

    def close(self) -> None:
        self.epochs.close()
        self.durable.close()

    def status(self) -> dict:
        return {
            "node": self.node_id,
            "role": self.role,
            "term": self.term,
            "fenced": self._fenced,
            "last_seq": self.last_seq,
            "checkpoint_seq": self.checkpoint_seq,
            "replicated_seq": self.replicated_seq,
            "published_seq": self._published_seq,
            "heartbeats": self.heartbeats,
            "reconnects": self.reconnects,
            "resyncs": self.resyncs,
            "fenced_appends": self.fenced_appends,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplicaNode {self.node_id} {self.role} term={self.term} "
            f"seq={self.last_seq}{' FENCED' if self._fenced else ''}>"
        )
