"""Update-log pressure monitoring and maintenance planning.

Laziness defers structural work into the update log; left unchecked, the
log's growth is exactly the latent resource exhaustion the paper's
"maintenance hours" reset exists to pay down.  The monitor reduces the
log's health to three load-bearing dimensions:

- **segment count** — every segment is an SB-tree leaf and a tag-list
  entry source; Lazy-Join cost scales with the segment lists' lengths
  (the Fig. 11(a)/13 series);
- **ER-tree depth** — deep nesting lengthens stored paths and the
  candidate-segment stack, and is what repacking collapses;
- **tag-list fan-out** — the longest per-tag segment list, the direct
  input size of a Lazy-Join over that tag.

Each dimension has a hard bound in :class:`PressureThresholds`; crossing
``elevated_fraction`` of a bound reports ``elevated``, crossing the bound
reports ``critical`` together with a concrete *maintenance plan* (op
records the service can execute behind its circuit breaker): a targeted
``repack`` of the deepest/busiest top-level subtree when nesting is the
problem, a full ``compact`` when global size is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.segment import DUMMY_ROOT_SID
from repro.obs.metrics import METRICS

__all__ = ["PressureThresholds", "PressureReport", "PressureMonitor"]

_M_SAMPLES = METRICS.counter(
    "pressure.samples", unit="samples", site="PressureMonitor.sample"
)
_M_CRITICAL = METRICS.counter(
    "pressure.critical_samples", unit="samples", site="PressureMonitor.sample"
)

LEVEL_OK = "ok"
LEVEL_ELEVATED = "elevated"
LEVEL_CRITICAL = "critical"


@dataclass(frozen=True)
class PressureThresholds:
    """Hard bounds on the update-log dimensions the monitor watches."""

    max_segments: int = 256
    max_depth: int = 12
    max_fanout: int = 128
    elevated_fraction: float = 0.75

    def __post_init__(self):
        if min(self.max_segments, self.max_depth, self.max_fanout) < 1:
            raise ValueError("pressure thresholds must be >= 1")
        if not 0.0 < self.elevated_fraction <= 1.0:
            raise ValueError("elevated_fraction must be in (0, 1]")


@dataclass
class PressureReport:
    """One pressure sample plus the recommended maintenance plan."""

    segments: int
    depth: int
    fanout: int
    level: str = LEVEL_OK
    reasons: list[str] = field(default_factory=list)
    #: Op records (``{"op": "repack", "sid": s}`` / ``{"op": "compact"}``)
    #: in recommended execution order; empty unless ``critical``.
    plan: list[dict] = field(default_factory=list)

    @property
    def needs_maintenance(self) -> bool:
        return bool(self.plan)

    def as_dict(self) -> dict:
        return {
            "segments": self.segments,
            "depth": self.depth,
            "fanout": self.fanout,
            "level": self.level,
            "reasons": list(self.reasons),
            "plan": [dict(op) for op in self.plan],
        }


class PressureMonitor:
    """Samples a database's update-log pressure against fixed thresholds.

    Stateless between samples apart from counters; safe to call from the
    writer thread (it only reads log structures the writer owns).
    """

    def __init__(self, thresholds: PressureThresholds | None = None):
        self.thresholds = thresholds or PressureThresholds()
        self.samples = 0
        self.critical_samples = 0

    def sample(self, db, *, from_registry: bool = False) -> PressureReport:
        """Measure ``db`` and return the report (no mutation).

        The three dimensions come from the structures' incremental trackers
        (``UpdateLog.dimensions()`` — O(1), replacing the full ER-tree and
        tag-list walks this method used to run per sample).  With
        ``from_registry=True`` they are read from the metrics registry's
        ``log.*`` gauges instead — the service path, where the sampled
        database is the observed primary that published them.
        """
        limits = self.thresholds
        if from_registry:
            segments = int(METRICS.value("log.segments"))
            depth = int(METRICS.value("log.depth.max"))
            fanout = int(METRICS.value("log.fanout.max"))
        else:
            dims = db.log.dimensions()
            segments = dims["segments"]
            depth = dims["max_depth"]
            fanout = dims["max_fanout"]
        report = PressureReport(segments=segments, depth=depth, fanout=fanout)

        dimensions = (
            ("segments", segments, limits.max_segments),
            ("depth", depth, limits.max_depth),
            ("fanout", fanout, limits.max_fanout),
        )
        critical = []
        for name, value, bound in dimensions:
            if value > bound:
                critical.append(name)
                report.reasons.append(f"{name} {value} over bound {bound}")
            elif value > bound * limits.elevated_fraction:
                report.reasons.append(
                    f"{name} {value} over {limits.elevated_fraction:.0%} "
                    f"of bound {bound}"
                )
        if critical:
            report.level = LEVEL_CRITICAL
            report.plan = self._plan(db, critical)
            if not report.plan:
                report.reasons.append(
                    "pressure is unactionable: every segment is already a "
                    "top-level document (maintenance cannot reduce further)"
                )
        elif report.reasons:
            report.level = LEVEL_ELEVATED

        self.samples += 1
        if report.level == LEVEL_CRITICAL:
            self.critical_samples += 1
        if METRICS.enabled:
            _M_SAMPLES.inc()
            if report.level == LEVEL_CRITICAL:
                _M_CRITICAL.inc()
        return report

    def _plan(self, db, critical: list[str]) -> list[dict]:
        """Concrete ops that bring the critical dimensions back in bounds.

        Depth-only pressure gets a targeted repack of the deepest top-level
        subtree (cheapest fix, touches one document); segment-count or
        fan-out pressure needs the global reset — ``compact`` relabels
        everything into one segment per top-level document.

        Maintenance cannot merge *distinct top-level documents*, so when the
        log is already fully collapsed (no nested segments, no tombstones)
        there is nothing actionable and the plan is empty — re-running a
        no-op compact on every pressure sample would be pure overhead.
        """
        if critical == ["depth"]:
            deepest = self._deepest_top_level(db)
            if deepest is not None:
                return [{"op": "repack", "sid": deepest}]
        if any(
            node.children or node.tombstones()
            for node in db.log.ertree.root.children
        ):
            return [{"op": "compact"}]
        return []

    @staticmethod
    def _deepest_top_level(db) -> int | None:
        best_sid = None
        best_depth = 1
        for top in db.log.ertree.root.children:
            if top.sid == DUMMY_ROOT_SID:
                continue
            subtree_depth = max(node.depth for node in top.iter_subtree())
            if subtree_depth > best_depth:
                best_depth = subtree_depth
                best_sid = top.sid
        return best_sid

    def metrics(self) -> dict:
        return {"samples": self.samples, "critical_samples": self.critical_samples}
