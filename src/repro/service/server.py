"""`DatabaseService` — the resilient concurrent facade over the lazy store.

Composes the pieces of :mod:`repro.service` into one operational surface:

- **reads** go through admission control, pin an epoch snapshot
  (:mod:`repro.service.snapshot`), and run under a
  :class:`~repro.service.context.QueryContext` deadline/budget; they never
  observe a half-applied update and never block the writer;
- **writes** (single-writer) go through admission control and the
  journaled primary when it is a
  :class:`~repro.durability.database.DurableDatabase` — then the committed
  op is replayed onto the next epoch's replica and published atomically;
- **maintenance** is driven by the :class:`~repro.service.pressure.
  PressureMonitor` and executed behind a :class:`~repro.service.breaker.
  CircuitBreaker`: repeated repack/compact failures open the breaker and
  the service degrades gracefully — reads keep flowing, writes are shed
  while pressure is critical — instead of hot-looping a failing repair;
- **degradation the other way**: when the log is *clean* (every segment
  top-level, no nesting, no tombstones — the state a compact leaves
  behind), ``algorithm="auto"`` joins skip the lazy cross-segment
  machinery entirely and run the repacked fast path, one in-segment
  Stack-Tree-Desc per shared segment;
- **sharded primaries** (:class:`~repro.shard.database.ShardedDatabase`
  and its durable subclass) are served natively: reads scatter-gather
  through the shard executor's worker replicas instead of pinning epoch
  snapshots (the coordinator's shard lock plus per-worker replicas *are*
  the isolation mechanism), writes route through the coordinator's
  virtual-coordinate methods, and pressure is sampled per shard with the
  worst level governing degradation.

``python -m repro serve`` wraps this class in a line-oriented shell (see
:mod:`repro.service.shell`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.database import LazyXMLDatabase
from repro.durability.recovery import apply_op, validate_op
from repro.errors import (
    Busy,
    CircuitOpenError,
    DeadlineExceeded,
    Draining,
    QueryError,
    ResourceExhausted,
    ServiceClosed,
)
from repro.joins.stack_tree import AXIS_DESCENDANT, stack_tree_desc
from repro.obs.metrics import METRICS
from repro.obs.trace import Trace
from repro.service.admission import AdmissionController
from repro.service.breaker import CircuitBreaker
from repro.service.context import QueryContext
from repro.service.pressure import (
    LEVEL_CRITICAL,
    LEVEL_ELEVATED,
    LEVEL_OK,
    PressureMonitor,
    PressureReport,
    PressureThresholds,
)
from repro.service.snapshot import EpochManager, Snapshot

__all__ = ["ServiceConfig", "DatabaseService", "clean_segment_join", "log_is_clean"]

# Service-level counters mirror the `_counters` dict (the dict stays the
# in-process health() shape; the registry makes them part of the exported
# metric catalogue alongside the structure-level instruments).
_SERVICE_COUNTERS = {
    "queries": METRICS.counter(
        "service.queries", unit="queries", site="DatabaseService.read"
    ),
    "writes": METRICS.counter(
        "service.writes", unit="ops", site="DatabaseService._write"
    ),
    "deadline_aborts": METRICS.counter(
        "service.deadline_aborts", unit="queries", site="DatabaseService.read"
    ),
    "resource_aborts": METRICS.counter(
        "service.resource_aborts", unit="queries", site="DatabaseService.read"
    ),
    "fast_path_joins": METRICS.counter(
        "service.fast_path_joins", unit="joins", site="DatabaseService.join"
    ),
    "lazy_joins": METRICS.counter(
        "service.lazy_joins", unit="joins", site="DatabaseService.join"
    ),
    "writes_shed_degraded": METRICS.counter(
        "service.writes_shed", unit="ops", site="DatabaseService._write"
    ),
    "maintenance_runs": METRICS.counter(
        "service.maintenance.runs", unit="ops", site="DatabaseService._maintenance_op"
    ),
    "maintenance_failures": METRICS.counter(
        "service.maintenance.failures", unit="ops", site="DatabaseService._maintenance_op"
    ),
    "replica_rebuilds": METRICS.counter(
        "service.replica_rebuilds", unit="rebuilds", site="DatabaseService._publish"
    ),
}


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs for a :class:`DatabaseService`."""

    #: Per-class concurrency limits; ``write`` must stay 1 (single writer).
    read_limit: int = 16
    maintenance_limit: int = 1
    #: Wait-queue depth per class (over the concurrency limit).
    read_queue_depth: int = 32
    write_queue_depth: int = 8
    #: Default seconds a request may wait for admission before ``Busy``.
    admission_wait: float = 0.05
    #: Default per-query deadline (seconds); ``None`` = no deadline.
    default_timeout: float | None = None
    #: Default per-query result-row budget; ``None`` = unbounded.
    max_result_rows: int | None = None
    #: Default per-query join-stack depth budget; ``None`` = unbounded.
    max_stack_depth: int | None = None
    #: Seconds a publish waits for a retiring epoch's readers to drain.
    drain_timeout: float = 5.0
    #: Writes between automatic pressure samples (0 disables).
    pressure_check_every: int = 8
    thresholds: PressureThresholds = field(default_factory=PressureThresholds)
    breaker_failure_threshold: int = 3
    breaker_reset_timeout: float = 30.0
    #: Shed writes with ``Busy`` while pressure is critical and the
    #: breaker is open (maintenance cannot run) — self-defense against
    #: unbounded log growth.
    shed_writes_when_degraded: bool = True


#: Severity order for merging per-shard pressure levels.
_LEVEL_ORDER = {LEVEL_OK: 0, LEVEL_ELEVATED: 1, LEVEL_CRITICAL: 2}


class _DirectView:
    """`snapshot()` stand-in for sharded primaries: a context-managed
    handle on the coordinator itself (no epoch pinning to release)."""

    def __init__(self, db):
        self.db = db

    def release(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        pass


def log_is_clean(db) -> bool:
    """True when the update log carries no structural debt: every segment
    is a top-level document with no nested segments and no tombstones —
    exactly the state :func:`~repro.core.maintenance.compact_database`
    leaves behind."""
    for node in db.log.ertree.root.children:
        if node.children or node.tombstones():
            return False
    return True


def clean_segment_join(
    db, tag_a: str, tag_d: str, axis: str = AXIS_DESCENDANT, *, context=None
):
    """The repacked fast path: per-segment Stack-Tree-Desc, no lazy machinery.

    Sound only when :func:`log_is_clean` holds — top-level segments are
    disjoint documents, so cross-segment pairs are impossible and the join
    decomposes into independent in-segment joins over immutable local
    labels.  Returns the same (ancestor, descendant) record pairs as
    ``algorithm="lazy"``, grouped by segment in ascending global position.
    """
    tid_a = db.log.tags.tid_of(tag_a)
    tid_d = db.log.tags.tid_of(tag_d)
    if tid_a is None or tid_d is None:
        return []
    d_sids = {entry.sid for entry in db.log.taglist.segments_for(tid_d)}
    results = []
    for entry in db.log.taglist.segments_for(tid_a):
        if entry.sid not in d_sids:
            continue
        if context is not None:
            context.tick()
        a_elements = db.index.elements_list(tid_a, entry.sid)
        d_elements = db.index.elements_list(tid_d, entry.sid)
        results.extend(
            stack_tree_desc(a_elements, d_elements, axis=axis, context=context)
        )
    return results


class DatabaseService:
    """Concurrent, deadline-aware, self-defending access to a database.

    Parameters
    ----------
    primary:
        The authoritative store — a plain
        :class:`~repro.core.database.LazyXMLDatabase` or a
        :class:`~repro.durability.database.DurableDatabase` (in which case
        every write, including pressure-triggered repacks, goes through the
        journaled commit protocol).
    config:
        :class:`ServiceConfig`; defaults are sized for tests/examples.
    clock:
        Injectable monotonic clock shared by deadlines and the breaker.
    """

    def __init__(
        self,
        primary,
        *,
        config: ServiceConfig | None = None,
        clock=time.monotonic,
        replication=None,
    ):
        # Local import: repro.shard.executor needs repro.service.context,
        # so a module-level import here would be circular.
        from repro.shard.database import ShardedDatabase
        from repro.shard.durable import ShardedDurableDatabase

        self.config = config or ServiceConfig()
        self._replication = replication
        if replication is not None and primary is None:
            primary = replication.primary.durable
        self.primary = primary
        self._sharded = isinstance(primary, ShardedDatabase)
        if self._sharded:
            # The coordinator is the read/write surface; its worker
            # replicas (or the shard lock, in-process) isolate readers.
            self._base = primary
            self._durable = isinstance(primary, ShardedDurableDatabase)
        else:
            # The raw LazyXMLDatabase behind a durable wrapper (or the
            # primary itself): what replicas are cloned from and pressure
            # is sampled on.
            self._base: LazyXMLDatabase = getattr(primary, "db", primary)
            self._durable = self._base is not primary
        self._clock = clock
        self._base.prepare_for_query()
        # Sharded primaries skip the epoch store: reads fan out to worker
        # replicas kept current by lazy op forwarding, so there is no
        # single replica to publish epochs over.
        self._epochs = (
            None
            if self._sharded
            else EpochManager(self._base, drain_timeout=self.config.drain_timeout)
        )
        self._admission = AdmissionController(
            {
                "read": self.config.read_limit,
                "write": 1,
                "maintenance": self.config.maintenance_limit,
            },
            queue_depth={
                "read": self.config.read_queue_depth,
                "write": self.config.write_queue_depth,
                "maintenance": 0,
            },
        )
        self._breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout=self.config.breaker_reset_timeout,
            clock=clock,
        )
        self._monitor = PressureMonitor(self.config.thresholds)
        self._writer_lock = threading.RLock()
        self._writes_since_check = 0
        self._last_pressure: PressureReport | None = None
        self._closed = False
        self._draining = False
        self._stop_maintenance = threading.Event()
        self._maintenance_thread: threading.Thread | None = None
        self._counters = {
            "queries": 0,
            "writes": 0,
            "deadline_aborts": 0,
            "resource_aborts": 0,
            "fast_path_joins": 0,
            "lazy_joins": 0,
            "writes_shed_degraded": 0,
            "maintenance_runs": 0,
            "maintenance_failures": 0,
            "replica_rebuilds": 0,
        }

    def _count(self, key: str) -> None:
        """Bump a service counter in both the dict and the registry."""
        self._counters[key] += 1
        if METRICS.enabled:
            _SERVICE_COUNTERS[key].inc()

    # ------------------------------------------------------------------
    # contexts & snapshots

    def make_context(self, **overrides) -> QueryContext:
        """A :class:`QueryContext` seeded from the service defaults."""
        options = {
            "timeout": self.config.default_timeout,
            "max_result_rows": self.config.max_result_rows,
            "max_stack_depth": self.config.max_stack_depth,
            "clock": self._clock,
        }
        options.update(overrides)
        return QueryContext(**options)

    def snapshot(self) -> Snapshot:
        """Pin the current epoch directly (no admission, no deadline) —
        for diagnostics and invariant checks; release it promptly.

        Sharded primaries have no epoch store; the returned handle views
        the coordinator directly (reads take the shard lock per call).
        """
        self._ensure_open()
        if self._epochs is None:
            return _DirectView(self._base)
        return self._epochs.pin()

    # ------------------------------------------------------------------
    # reads

    def read(self, fn, *, context=None, wait_timeout=None):
        """Run ``fn(db, context)`` against a pinned snapshot.

        The generic read entry point: admission-controlled, snapshot-
        isolated, deadline-enforced.  ``fn`` must treat ``db`` as
        read-only.
        """
        self._ensure_open()
        wait = self.config.admission_wait if wait_timeout is None else wait_timeout
        with self._admission.admit("read", wait_timeout=wait):
            ctx = context if context is not None else self.make_context()
            if self._epochs is None:
                # Sharded: scatter-gather against the coordinator (worker
                # replicas are the snapshot; the shard lock orders reads
                # against the single writer).
                return self._run_read(fn, self._base, ctx)
            with self._epochs.pin() as snap:
                return self._run_read(fn, snap.db, ctx)

    def _run_read(self, fn, db, ctx):
        try:
            result = fn(db, ctx)
        except DeadlineExceeded:
            self._count("deadline_aborts")
            raise
        except ResourceExhausted:
            self._count("resource_aborts")
            raise
        self._count("queries")
        return result

    def follower_read(self, fn, *, min_seq=None, context=None, wait_timeout=None):
        """Run ``fn(db, context)`` against an epoch-pinned *follower* snapshot.

        Offloads reads from the primary when a replication cluster is
        attached (falls back to :meth:`read` otherwise).  ``min_seq``
        demands read-your-writes at a replicated sequence number: the
        follower catches up first, and :class:`~repro.errors
        .LaggingReplica` propagates if it still cannot reach it.
        """
        self._ensure_open()
        if self._replication is None:
            return self.read(fn, context=context, wait_timeout=wait_timeout)
        wait = self.config.admission_wait if wait_timeout is None else wait_timeout
        with self._admission.admit("read", wait_timeout=wait):
            ctx = context if context is not None else self.make_context()
            with self._replication.pin_follower(min_seq=min_seq) as snap:
                return self._run_read(fn, snap.db, ctx)

    def query(self, expression: str, *, bindings: bool = False, context=None,
              wait_timeout=None):
        """Snapshot-isolated :meth:`LazyXMLDatabase.path_query`."""
        return self.read(
            lambda db, ctx: db.path_query(expression, bindings=bindings, context=ctx),
            context=context,
            wait_timeout=wait_timeout,
        )

    def twig(self, expression: str, *, bindings: bool = False,
             strategy: str = "auto", context=None, wait_timeout=None):
        """Snapshot-isolated :meth:`LazyXMLDatabase.twig_query`."""
        return self.read(
            lambda db, ctx: db.twig_query(
                expression, bindings=bindings, strategy=strategy, context=ctx
            ),
            context=context,
            wait_timeout=wait_timeout,
        )

    def join(
        self,
        tag_a: str,
        tag_d: str,
        axis: str = AXIS_DESCENDANT,
        *,
        algorithm: str = "auto",
        context=None,
        wait_timeout=None,
        **options,
    ):
        """Snapshot-isolated structural join.

        ``algorithm="auto"`` (the default) picks the repacked fast path
        (:func:`clean_segment_join`) when the pinned snapshot's log is
        clean and Lazy-Join otherwise; any explicit algorithm name is
        forwarded to :meth:`LazyXMLDatabase.structural_join`.
        """

        def run(db, ctx):
            if algorithm == "auto":
                # Sharded coordinators have no single log to test for
                # cleanliness; the scatter plan *is* the fast path there
                # (per-shard joins already skip shards the catalog prunes).
                if not self._sharded and log_is_clean(db):
                    self._count("fast_path_joins")
                    return clean_segment_join(db, tag_a, tag_d, axis, context=ctx)
                self._count("lazy_joins")
                return db.structural_join(
                    tag_a, tag_d, axis, algorithm="lazy", context=ctx, **options
                )
            return db.structural_join(
                tag_a, tag_d, axis, algorithm=algorithm, context=ctx, **options
            )

        return self.read(run, context=context, wait_timeout=wait_timeout)

    # ------------------------------------------------------------------
    # tracing

    def trace_query(self, expression: str, *, bindings: bool = False,
                    wait_timeout=None):
        """Run :meth:`query` with span tracing; returns ``(result, spans)``.

        ``spans`` is the trace's span list as JSON-serializable dicts (see
        :mod:`repro.obs.trace` for the format), covering the path query and
        every per-step join it ran.
        """
        trace = Trace()
        context = self.make_context(trace=trace)
        result = self.query(
            expression, bindings=bindings, context=context,
            wait_timeout=wait_timeout,
        )
        return result, trace.as_dicts()

    def trace_twig(self, expression: str, *, bindings: bool = False,
                   strategy: str = "auto", wait_timeout=None):
        """Run :meth:`twig` with span tracing; returns ``(result, spans)``.

        The ``twig_query`` span carries the planner's verdict (chosen
        strategy, twig vs pairwise cost estimates, per-edge costs).
        """
        trace = Trace()
        context = self.make_context(trace=trace)
        result = self.twig(
            expression, bindings=bindings, strategy=strategy,
            context=context, wait_timeout=wait_timeout,
        )
        return result, trace.as_dicts()

    def trace_join(self, tag_a: str, tag_d: str, axis: str = AXIS_DESCENDANT,
                   *, algorithm: str = "lazy", wait_timeout=None, **options):
        """Run :meth:`join` with span tracing; returns ``(result, spans)``."""
        trace = Trace()
        context = self.make_context(trace=trace)
        result = self.join(
            tag_a, tag_d, axis, algorithm=algorithm, context=context,
            wait_timeout=wait_timeout, **options,
        )
        return result, trace.as_dicts()

    # ------------------------------------------------------------------
    # writes (single writer)

    def insert(self, fragment: str, position: int | None = None, *,
               validate: str = "fragment", wait_timeout=None):
        if position is None:
            position = self._base.document_length
        op = {"op": "insert", "fragment": fragment, "position": position}
        if validate != "fragment":
            op["validate"] = validate
        return self._write(op, wait_timeout=wait_timeout)

    def remove(self, position: int, length: int, *, wait_timeout=None):
        return self._write(
            {"op": "remove", "position": position, "length": length},
            wait_timeout=wait_timeout,
        )

    def remove_segment(self, sid: int, *, wait_timeout=None):
        return self._write({"op": "remove_segment", "sid": sid},
                           wait_timeout=wait_timeout)

    def repack(self, sid: int, *, wait_timeout=None):
        """Operator-requested repack (maintenance class, breaker-guarded)."""
        return self._maintenance_op({"op": "repack", "sid": sid},
                                    wait_timeout=wait_timeout)

    def compact(self, *, wait_timeout=None):
        """Operator-requested compact (maintenance class, breaker-guarded)."""
        return self._maintenance_op({"op": "compact"}, wait_timeout=wait_timeout)

    def apply_batch(self, ops: list[dict], *, wait_timeout=None):
        """Apply several structural ops as **one** write; per-op results.

        The batch is one admission ticket, one primary commit (durable
        primaries journal it as a single CRC-framed record with a single
        fsync) and one epoch publish — read-path caches invalidate once
        per batch rather than once per op.  Sub-ops use the journal
        dialect; one whose preconditions fail mid-batch yields ``None``
        in its result slot.
        """
        return self._write(
            {"op": "batch", "ops": [dict(sub) for sub in ops]},
            wait_timeout=wait_timeout,
        )

    def _write(self, op: dict, *, wait_timeout=None, request_class: str = "write"):
        self._ensure_open()
        if (
            request_class == "write"
            and self.config.shed_writes_when_degraded
            and self.is_degraded
        ):
            self._count("writes_shed_degraded")
            raise Busy(
                "service is degraded (pressure critical, maintenance "
                "circuit open); writes are shed until the log drains"
            )
        wait = self.config.admission_wait if wait_timeout is None else wait_timeout
        with self._admission.admit(request_class, wait_timeout=wait):
            with self._writer_lock:
                result = self._apply_primary(op)
                self._publish([op])
                self._count("writes")
                if request_class == "write":
                    self._after_write()
        return result

    def _apply_primary(self, op: dict):
        """Apply ``op`` to the authoritative database.

        Durable primaries dispatch through their journaled methods — the
        op is fsynced before it is applied, so pressure-triggered repacks
        journal exactly like user writes; sharded primaries dispatch
        through the coordinator's virtual-coordinate methods (which route
        to the owning shard and forward to its worker); plain primaries
        use the shared validate/apply dispatcher.

        With a replication cluster attached, the write goes through the
        cluster instead: commit on the primary node, ship the record to
        every follower, fence on a stale term
        (:class:`~repro.errors.FencedError` propagates to the caller).
        """
        if self._replication is not None:
            return self._replication.commit_from(
                self._replication.primary_id, dict(op)
            )
        if self._durable or self._sharded:
            kind = op["op"]
            if kind == "batch":
                return self.primary.apply_batch(op["ops"])
            if kind == "insert":
                return self.primary.insert(
                    op["fragment"],
                    op["position"],
                    validate=op.get("validate", "fragment"),
                )
            if kind == "remove":
                return self.primary.remove(op["position"], op["length"])
            if kind == "remove_segment":
                return self.primary.remove_segment(op["sid"])
            if kind == "repack":
                return self.primary.repack(op["sid"])
            if kind == "compact":
                return self.primary.compact()
            raise QueryError(f"unknown operation {kind!r}")
        validate_op(self._base, op)
        return apply_op(self._base, op)

    def _publish(self, ops: list[dict]) -> None:
        """Publish committed ops to readers; self-heal on replica failure.

        Replica replay uses the same dispatcher as crash recovery, so a
        failure here means the replica diverged (e.g. an injected fault).
        The primary is already committed — readers must not be left on a
        stale epoch forever — so the epoch store is rebuilt from a fresh
        clone of the primary.

        Sharded primaries publish nothing here: the coordinator already
        forwarded the committed op to the owning shard's worker replica.
        """
        if self._epochs is None:
            return
        try:
            self._epochs.publish(ops)
        except Exception:
            self._count("replica_rebuilds")
            old = self._epochs
            self._epochs = EpochManager(
                self._base, drain_timeout=self.config.drain_timeout
            )
            old.close()

    # ------------------------------------------------------------------
    # replication / failover

    @property
    def replication(self):
        """The attached :class:`~repro.replication.cluster
        .ReplicationCluster` (None when standalone)."""
        return self._replication

    def promote(self, node_id: int):
        """Fail over to ``node_id`` and rewire the service's authority.

        The cluster persists the new fenced term before the node accepts
        a write; the service then re-seeds its epoch store from the new
        primary's database so subsequent reads and writes flow through it.
        """
        from repro.errors import ReplicationError

        if self._replication is None:
            raise ReplicationError("service has no replication cluster")
        with self._writer_lock:
            node = self._replication.promote(node_id)
            self.primary = node.durable
            self._base = node.durable.db
            self._base.prepare_for_query()
            old = self._epochs
            self._epochs = EpochManager(
                self._base, drain_timeout=self.config.drain_timeout
            )
            if old is not None:
                old.close()
        return node

    def replication_status(self) -> dict | None:
        """The cluster's :meth:`~repro.replication.cluster
        .ReplicationCluster.status` (None when standalone)."""
        if self._replication is None:
            return None
        return self._replication.status()

    # ------------------------------------------------------------------
    # pressure-driven maintenance & degradation

    def _after_write(self) -> None:
        every = self.config.pressure_check_every
        if every <= 0:
            return
        self._writes_since_check += 1
        if self._writes_since_check >= every:
            self._writes_since_check = 0
            self.run_maintenance()

    def check_pressure(self) -> PressureReport:
        """Sample pressure on the authoritative log (no maintenance run).

        Reads the dimensions from the metrics registry's ``log.*`` gauges
        (published incrementally by the observed primary) when metrics are
        enabled, falling back to the structures' O(1) trackers otherwise —
        either way, no ER-tree or tag-list walk.
        """
        with self._writer_lock:
            if self._sharded:
                report = self._sample_sharded()
            else:
                if METRICS.enabled:
                    self._base.log.publish_gauges()
                report = self._monitor.sample(
                    self._base, from_registry=METRICS.enabled
                )
        self._last_pressure = report
        return report

    def _sample_sharded(self) -> PressureReport:
        """Per-shard pressure, merged: worst level governs, plans concatenate.

        Each shard's log is sampled from its own O(1) trackers (the
        registry's ``log.*`` gauges aggregate all shards and cannot be
        attributed).  Repack plans carry lattice sids, which the sharded
        dispatcher routes to the owning shard; a compact anywhere collapses
        to one global compact (the coordinator compacts every shard).
        """
        merged = PressureReport(segments=0, depth=0, fanout=0)
        want_compact = False
        for shard, db in enumerate(self.primary.shards):
            report = self._monitor.sample(getattr(db, "db", db))
            merged.segments += report.segments
            merged.depth = max(merged.depth, report.depth)
            merged.fanout = max(merged.fanout, report.fanout)
            if _LEVEL_ORDER[report.level] > _LEVEL_ORDER[merged.level]:
                merged.level = report.level
            merged.reasons.extend(
                f"shard {shard}: {reason}" for reason in report.reasons
            )
            for op in report.plan:
                if op["op"] == "compact":
                    want_compact = True
                else:
                    merged.plan.append(op)
        if want_compact:
            merged.plan.append({"op": "compact"})
        return merged

    def run_maintenance(self) -> PressureReport:
        """Sample pressure and execute the recommended plan, if any.

        Each planned op runs behind the circuit breaker; failures open it
        after the configured threshold and are swallowed here (the service
        keeps serving — that is the graceful-degradation contract).
        Returns the pressure report that drove the decision.
        """
        report = self.check_pressure()
        if not report.needs_maintenance:
            return report
        for op in report.plan:
            try:
                self._maintenance_op(op)
            except (Busy, CircuitOpenError, ServiceClosed):
                break
            except Exception:
                # Recorded by the breaker inside _maintenance_op; degraded
                # mode (breaker open) is the steady state if this persists.
                break
        self._last_pressure = self.check_pressure()
        return self._last_pressure

    def _maintenance_op(self, op: dict, *, wait_timeout=None):
        def attempt():
            return self._write(
                op, wait_timeout=wait_timeout, request_class="maintenance"
            )

        self._count("maintenance_runs")
        try:
            return self._breaker.call(attempt)
        except CircuitOpenError:
            raise
        except Exception:
            self._count("maintenance_failures")
            raise

    @property
    def is_degraded(self) -> bool:
        """True when pressure is critical but maintenance cannot run
        (breaker open): reads continue, writes are shed."""
        if self._breaker.state != "open":
            return False
        last = self._last_pressure
        return last is not None and last.level == LEVEL_CRITICAL

    # ------------------------------------------------------------------
    # background maintenance

    def start_maintenance(self, interval: float = 1.0) -> None:
        """Run :meth:`run_maintenance` every ``interval`` seconds in a
        daemon thread until :meth:`close`."""
        self._ensure_open()
        if self._maintenance_thread is not None:
            return

        def loop():
            while not self._stop_maintenance.wait(interval):
                try:
                    self.run_maintenance()
                except ServiceClosed:  # pragma: no cover - close race
                    break

        self._maintenance_thread = threading.Thread(
            target=loop, name="repro-maintenance", daemon=True
        )
        self._maintenance_thread.start()

    # ------------------------------------------------------------------
    # health & lifecycle

    def health(self) -> dict:
        """Operational snapshot: status, pressure, breaker, admission,
        epochs, read-path cache, log stats."""
        last = self._last_pressure
        breaker_state = self._breaker.state
        if self._closed:
            status = "closed"
        elif self._draining:
            status = "draining"
        elif self.is_degraded:
            status = "degraded"
        elif breaker_state != "closed" or (last is not None and last.level != "ok"):
            status = "warning"
        else:
            status = "ok"
        log_stats = self._base.stats()
        epochs = self._epochs.metrics() if self._epochs is not None else None
        payload = {
            "status": status,
            "mode": self._base.mode,
            "durable": self._durable,
            "segments": self._base.segment_count,
            "elements": self._base.element_count,
            "document_length": self._base.document_length,
            "log_bytes": log_stats.total_bytes,
            "pressure": last.as_dict() if last is not None else None,
            "breaker": self._breaker.metrics(),
            "admission": self._admission.metrics(),
            "epochs": epochs,
            # The published replica's compiled read-path cache — the one
            # read queries actually hit (reads run on pinned snapshots).
            "readpath": epochs.get("readpath") if epochs is not None else None,
            "counters": dict(self._counters),
        }
        if self._replication is not None:
            payload["replication"] = self._replication.status()
        if self._sharded:
            executor = self.primary.executor
            payload["shards"] = {
                "count": self.primary.n_shards,
                "executor": executor.kind,
                "documents": [
                    self.primary.docmap.docs_on(s)
                    for s in range(self.primary.n_shards)
                ],
                "workers_alive": [
                    executor.alive(s) for s in range(self.primary.n_shards)
                ],
            }
        return payload

    def stats(self) -> dict:
        """:meth:`health` minus derived status, plus the full metric
        snapshot and catalogue from the registry (CLI/shell ``stats``)."""
        health = self.health()
        health.pop("status", None)
        health["metrics"] = METRICS.snapshot()
        health["metric_catalogue"] = METRICS.catalogue()
        # Planner decisions (path + twig surfaces): strategy counts and
        # the most recent choices with their cost estimates, so a plan
        # regression shows up here instead of only in latency.
        from repro.twig.plan import PLAN_RECORDER

        health["planner"] = PLAN_RECORDER.snapshot()
        return health

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceClosed("service has been closed")
        if self._draining:
            raise Draining(
                "service is draining for shutdown; no new requests accepted"
            )

    @property
    def draining(self) -> bool:
        """True after :meth:`begin_drain` (and before :meth:`close`)."""
        return self._draining

    def begin_drain(self) -> None:
        """Enter the draining state: refuse *new* requests with a typed
        :class:`~repro.errors.Draining` while requests already admitted
        (and pinned snapshots already taken) finish normally.

        The first half of graceful shutdown, shared by the TCP front end
        (SIGTERM / ``shutdown``) and the line-protocol shell (EOF /
        KeyboardInterrupt); :meth:`close` completes it once in-flight work
        has ended.  Idempotent; a no-op on a closed service.
        """
        self._draining = True
        self._stop_maintenance.set()

    def close(self) -> None:
        """Stop maintenance, refuse new requests, release the epoch store.

        In-flight reads holding pinned snapshots finish normally.
        """
        if self._closed:
            return
        self._closed = True
        self._stop_maintenance.set()
        if self._maintenance_thread is not None:
            self._maintenance_thread.join(timeout=5.0)
            self._maintenance_thread = None
        self._admission.close()
        if self._epochs is not None:
            self._epochs.close()
        if self._replication is not None:
            self._replication.close()
        elif self._durable or self._sharded:
            self.primary.close()

    def __enter__(self) -> "DatabaseService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
