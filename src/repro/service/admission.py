"""Admission control and backpressure.

A production service in front of the lazy store must bound its own
concurrency: unbounded reader fan-out starves the writer, and unbounded
writes grow the update log faster than maintenance can drain it.  The
:class:`AdmissionController` enforces per-class (``read`` / ``write`` /
``maintenance``) concurrency limits plus a small wait queue per class; a
request over both limits is rejected *immediately* with the transient
:class:`~repro.errors.Busy` — load shedding, not queue collapse.  Shed and
admitted counts are exported as metrics.

Callers that can wait should wrap their attempt in
:func:`~repro.service.retry.retry_with_backoff` (re-exported here), which
retries ``Busy`` with capped exponential backoff and full jitter — the
shared policy in :mod:`repro.service.retry`, also used by the replication
heartbeat and the network client.
"""

from __future__ import annotations

import threading
import time

from repro.errors import Busy, ServiceClosed
from repro.obs.metrics import LATENCY_BUCKETS, METRICS
from repro.service.retry import BackoffPolicy, retry_with_backoff

__all__ = ["AdmissionController", "Ticket", "BackoffPolicy", "retry_with_backoff"]

_M_ADMITTED = METRICS.counter(
    "service.admission.admitted", unit="requests", site="AdmissionController.admit"
)
_M_REJECTED = METRICS.counter(
    "service.admission.rejected", unit="requests", site="AdmissionController.admit"
)
_H_WAIT = METRICS.histogram(
    "service.admission.wait_seconds",
    unit="seconds",
    site="AdmissionController.admit (queued waits only)",
    boundaries=LATENCY_BUCKETS,
)

#: Default per-class concurrency limits: many readers, one writer (the
#: snapshot protocol is single-writer), one maintenance job at a time.
DEFAULT_LIMITS = {"read": 16, "write": 1, "maintenance": 1}

#: Default per-class wait-queue depth on top of the concurrency limit.
DEFAULT_QUEUE_DEPTH = {"read": 32, "write": 8, "maintenance": 0}


class Ticket:
    """An admitted request; release it (or use as a context manager)."""

    __slots__ = ("_controller", "_request_class", "_released")

    def __init__(self, controller: "AdmissionController", request_class: str):
        self._controller = controller
        self._request_class = request_class
        self._released = False

    @property
    def request_class(self) -> str:
        return self._request_class

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self._request_class)

    def __enter__(self) -> "Ticket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class _ClassState:
    __slots__ = ("limit", "queue_depth", "active", "waiting", "admitted", "rejected", "peak")

    def __init__(self, limit: int, queue_depth: int):
        self.limit = limit
        self.queue_depth = queue_depth
        self.active = 0
        self.waiting = 0
        self.admitted = 0
        self.rejected = 0
        self.peak = 0


class AdmissionController:
    """Bounded per-class admission with immediate ``Busy`` load shedding.

    ``admit(cls)`` admits when the class has a free slot; otherwise it
    waits up to ``wait_timeout`` *if* the class's wait queue has room, and
    rejects with :class:`~repro.errors.Busy` when the queue is full or the
    wait times out.  ``wait_timeout=0`` makes rejection immediate.
    """

    def __init__(
        self,
        limits: dict[str, int] | None = None,
        *,
        queue_depth: dict[str, int] | None = None,
    ):
        limits = dict(DEFAULT_LIMITS if limits is None else limits)
        depths = dict(DEFAULT_QUEUE_DEPTH if queue_depth is None else queue_depth)
        for name, limit in limits.items():
            if limit < 1:
                raise ValueError(f"limit for {name!r} must be >= 1, got {limit}")
        self._lock = threading.Lock()
        self._freed = threading.Condition(self._lock)
        self._classes = {
            name: _ClassState(limit, max(0, depths.get(name, 0)))
            for name, limit in limits.items()
        }
        self._closed = False

    def admit(self, request_class: str, *, wait_timeout: float = 0.0) -> Ticket:
        """Admit a request of ``request_class`` or raise ``Busy``."""
        state = self._state(request_class)
        with self._lock:
            if self._closed:
                raise ServiceClosed("admission controller is closed")
            if state.active < state.limit:
                return self._admit_locked(state, request_class)
            if wait_timeout <= 0 or state.waiting >= state.queue_depth:
                state.rejected += 1
                if METRICS.enabled:
                    _M_REJECTED.inc()
                raise Busy(
                    f"{request_class} limit reached "
                    f"({state.active}/{state.limit} active, "
                    f"{state.waiting} waiting); retry with backoff"
                )
            state.waiting += 1
            deadline = time.monotonic() + wait_timeout
            try:
                while state.active >= state.limit:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._closed:
                        state.rejected += 1
                        if METRICS.enabled:
                            _M_REJECTED.inc()
                            _H_WAIT.observe(wait_timeout)
                        raise Busy(
                            f"{request_class} queue wait exceeded "
                            f"{wait_timeout:.3f}s; retry with backoff"
                        )
                    self._freed.wait(remaining)
            finally:
                state.waiting -= 1
            if METRICS.enabled:
                _H_WAIT.observe(wait_timeout - (deadline - time.monotonic()))
            return self._admit_locked(state, request_class)

    def _admit_locked(self, state: _ClassState, request_class: str) -> Ticket:
        state.active += 1
        state.admitted += 1
        state.peak = max(state.peak, state.active)
        if METRICS.enabled:
            _M_ADMITTED.inc()
        return Ticket(self, request_class)

    def _release(self, request_class: str) -> None:
        with self._lock:
            state = self._classes[request_class]
            state.active -= 1
            self._freed.notify_all()

    def _state(self, request_class: str) -> _ClassState:
        try:
            return self._classes[request_class]
        except KeyError:
            raise Busy(f"unknown request class {request_class!r}") from None

    def close(self) -> None:
        """Reject all future admissions (in-flight tickets stay valid)."""
        with self._lock:
            self._closed = True
            self._freed.notify_all()

    def metrics(self) -> dict:
        """Per-class counters: active/peak/admitted/rejected/waiting."""
        with self._lock:
            return {
                name: {
                    "limit": state.limit,
                    "active": state.active,
                    "peak": state.peak,
                    "waiting": state.waiting,
                    "admitted": state.admitted,
                    "rejected": state.rejected,
                }
                for name, state in self._classes.items()
            }
