"""Concurrent access layer: snapshot reads, deadlines, backpressure,
graceful degradation.

The paper's laziness trades update cost for update-log growth; this package
makes that trade safe to operate under concurrent load:

- :mod:`repro.service.context` — :class:`QueryContext`: deadlines and
  resource budgets enforced at cooperative cancellation checkpoints inside
  the join algorithms;
- :mod:`repro.service.snapshot` — epoch-based snapshot isolation (single
  writer, many readers, readers never block the writer);
- :mod:`repro.service.admission` — bounded per-class admission control
  that sheds over-limit requests with a transient :class:`~repro.errors
  .Busy`;
- :mod:`repro.service.retry` — the shared capped-jittered backoff policy
  (sync and async) used by admission callers, the replication heartbeat,
  and the network client;
- :mod:`repro.service.breaker` — a circuit breaker guarding automatic
  maintenance;
- :mod:`repro.service.pressure` — update-log pressure monitoring and
  repack/compact planning;
- :mod:`repro.service.server` — :class:`DatabaseService`, the facade tying
  it all together (wired to ``python -m repro serve``).
"""

from repro.service.admission import AdmissionController
from repro.service.breaker import CircuitBreaker
from repro.service.context import QueryContext
from repro.service.pressure import PressureMonitor, PressureReport, PressureThresholds
from repro.service.retry import (
    BackoffPolicy,
    retry_with_backoff,
    retry_with_backoff_async,
)
from repro.service.server import DatabaseService, ServiceConfig
from repro.service.snapshot import EpochManager, Snapshot

__all__ = [
    "AdmissionController",
    "BackoffPolicy",
    "CircuitBreaker",
    "DatabaseService",
    "EpochManager",
    "PressureMonitor",
    "PressureReport",
    "PressureThresholds",
    "QueryContext",
    "ServiceConfig",
    "Snapshot",
    "retry_with_backoff",
    "retry_with_backoff_async",
]
