"""Epoch-based snapshot isolation: single writer, many readers.

The paper's structures are mutated in place, so a reader that overlaps a
half-applied insert/remove could observe an inconsistent index.  This
module gives readers a *pinned, immutable* view instead, RCU-style:

- The manager owns read **buffers** — full database replicas built with
  :func:`repro.storage.clone`.  Exactly one buffer is *published* at any
  instant; readers :meth:`~EpochManager.pin` it (one locked refcount
  increment) and run arbitrary queries against it.  A published buffer is
  never mutated, so a pinned snapshot stays internally consistent for as
  long as it is held — that is the whole isolation argument.
- The single writer applies each committed operation to the authoritative
  database, then calls :meth:`~EpochManager.publish` with the op records.
  Publish replays the ops onto a *spare* buffer (cheap: O(op), the same
  deterministic dispatcher crash recovery uses, so replica state is
  bit-identical to the primary) and atomically swaps it in as the next
  epoch.  Readers arriving after the swap see the new epoch; readers still
  holding the old one are undisturbed.
- The previous buffer becomes the next spare once its pin count drains to
  zero (the RCU grace period).  A reader that holds a pin past
  ``drain_timeout`` cannot wedge the writer: publish abandons the stuck
  buffer to its readers and clones a fresh one from the published state
  (counted in :meth:`metrics` as ``clone_fallbacks``).

Writers therefore never block readers, and readers delay the writer only
by at most one grace-period wait — and never indefinitely.

The epoch discipline is also what lets replicas keep a **warm compiled
read path** (:mod:`repro.core.readpath`) across publishes: a buffer is
only mutated while private (op replay on the spare), each replayed op
bumps exactly the version counters of the structures it touched, and once
published the buffer is immutable — so compiled element arrays and segment
lists stay valid for untouched structures from epoch to epoch, and
invalidation cost tracks the op stream, not the database size.
:meth:`EpochManager.metrics` surfaces the published replica's cache
hit/miss counters as ``readpath``.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro import storage
from repro.core.database import LazyXMLDatabase
from repro.durability.recovery import apply_op
from repro.errors import ServiceClosed
from repro.obs.metrics import METRICS

__all__ = ["EpochManager", "Snapshot"]

_M_PUBLISHES = METRICS.counter(
    "service.epoch.publishes", unit="epochs", site="EpochManager.publish"
)
_M_DRAIN_WAITS = METRICS.counter(
    "service.epoch.drain_waits", unit="waits", site="EpochManager._take_spare_locked"
)
_M_CLONE_FALLBACKS = METRICS.counter(
    "service.epoch.clone_fallbacks", unit="clones", site="EpochManager._take_spare_locked"
)


class _Buffer:
    """One read replica: a database plus epoch/pin bookkeeping."""

    __slots__ = ("db", "applied_upto", "epoch", "pins")

    def __init__(self, db: LazyXMLDatabase, applied_upto: int):
        self.db = db
        self.applied_upto = applied_upto  # absolute index into the op history
        self.epoch = 0
        self.pins = 0


class Snapshot:
    """A pinned, consistent read-only view of the database at one epoch.

    Use as a context manager (or call :meth:`release`); queries run against
    :attr:`db`.  The underlying buffer is guaranteed not to change until
    every pin on it is released.
    """

    __slots__ = ("db", "epoch", "_manager", "_buffer", "_released")

    def __init__(self, manager: "EpochManager", buffer: _Buffer):
        self._manager = manager
        self._buffer = buffer
        self.db = buffer.db
        self.epoch = buffer.epoch
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._manager._unpin(self._buffer)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Snapshot epoch={self.epoch} released={self._released}>"


class EpochManager:
    """Publishes database epochs to readers; owned by a single writer.

    Parameters
    ----------
    seed:
        The authoritative database's current state; the first published
        buffer is a clone of it.
    drain_timeout:
        Seconds :meth:`publish` waits for the retiring buffer's pins to
        drain before abandoning it and cloning a fresh replica instead.
    clone_fn:
        Replica factory (injectable for tests); defaults to
        :func:`repro.storage.clone`.
    """

    def __init__(
        self,
        seed: LazyXMLDatabase,
        *,
        drain_timeout: float = 5.0,
        clone_fn=storage.clone,
    ):
        self._clone = clone_fn
        self._drain_timeout = drain_timeout
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        # Absolute op history; ops before _ops_base have been replayed by
        # every tracked buffer and are dropped.
        self._ops: deque[dict] = deque()
        self._ops_base = 0
        self._ops_total = 0
        first = _Buffer(self._seed_clone(seed), applied_upto=0)
        self._current: _Buffer | None = first
        self._spares: deque[_Buffer] = deque()
        self._clones = 1
        self._publishes = 0
        self._drain_waits = 0
        self._clone_fallbacks = 0

    def _seed_clone(self, db: LazyXMLDatabase) -> LazyXMLDatabase:
        replica = self._clone(db)
        # Replicas replay ops the observed primary already counted;
        # mutation-path metrics must not see them twice.
        if hasattr(replica, "set_observed"):
            replica.set_observed(False)
        replica.prepare_for_query()
        return replica

    # ------------------------------------------------------------------
    # reader side

    def pin(self) -> Snapshot:
        """Pin the currently published epoch; cheap (one locked refcount)."""
        with self._lock:
            if self._current is None:
                raise ServiceClosed("epoch manager is closed")
            self._current.pins += 1
            return Snapshot(self, self._current)

    def _unpin(self, buffer: _Buffer) -> None:
        with self._lock:
            buffer.pins -= 1
            if buffer.pins == 0:
                self._drained.notify_all()

    # ------------------------------------------------------------------
    # writer side (single writer assumed; the service serializes writes)

    @property
    def current_epoch(self) -> int:
        with self._lock:
            if self._current is None:
                raise ServiceClosed("epoch manager is closed")
            return self._current.epoch

    def publish(self, ops: list[dict]) -> int:
        """Replay committed ``ops`` onto a spare buffer and swap it in.

        Returns the new epoch number.  Must be called by the (single)
        writer after the authoritative database has applied ``ops``.
        """
        with self._lock:
            if self._current is None:
                raise ServiceClosed("epoch manager is closed")
            self._ops.extend(ops)
            self._ops_total += len(ops)
            spare = self._take_spare_locked()
        if spare is None:
            spare = self._clone_current()
        # The spare is private now (zero pins, not published): replay the
        # ops it has not seen.  apply_op is the recovery dispatcher, so the
        # replica's history is identical to the primary's.
        while spare.applied_upto < self._ops_total:
            op = self._ops_at(spare.applied_upto)
            apply_op(spare.db, op)
            spare.applied_upto += 1
        spare.db.prepare_for_query()
        with self._lock:
            if self._current is None:
                raise ServiceClosed("epoch manager is closed")
            retiring = self._current
            spare.epoch = retiring.epoch + 1
            self._current = spare
            self._spares.append(retiring)
            self._publishes += 1
            if METRICS.enabled:
                _M_PUBLISHES.inc()
            self._truncate_ops_locked()
            return spare.epoch

    def _take_spare_locked(self) -> _Buffer | None:
        """Pop a spare whose readers have drained; None → caller clones."""
        if not self._spares:
            return None
        spare = self._spares.popleft()
        if spare.pins == 0:
            return spare
        self._drain_waits += 1
        if METRICS.enabled:
            _M_DRAIN_WAITS.inc()
        deadline = time.monotonic() + self._drain_timeout
        while spare.pins:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # A stuck reader owns that buffer now; abandon it (it is
                # garbage-collected when the reader releases) and report
                # that a fresh clone is needed.
                self._clone_fallbacks += 1
                if METRICS.enabled:
                    _M_CLONE_FALLBACKS.inc()
                return None
            self._drained.wait(remaining)
        return spare

    def _clone_current(self) -> _Buffer:
        """Build a new buffer from the published state (reader-safe: the
        published buffer is never mutated)."""
        with self._lock:
            if self._current is None:
                raise ServiceClosed("epoch manager is closed")
            source = self._current
        replica = self._clone(source.db)
        if hasattr(replica, "set_observed"):
            replica.set_observed(False)
        buffer = _Buffer(replica, applied_upto=source.applied_upto)
        self._clones += 1
        return buffer

    def _ops_at(self, index: int) -> dict:
        return self._ops[index - self._ops_base]

    def _truncate_ops_locked(self) -> None:
        tracked = [self._current] + list(self._spares)
        floor = min(buffer.applied_upto for buffer in tracked)
        while self._ops_base < floor:
            self._ops.popleft()
            self._ops_base += 1

    # ------------------------------------------------------------------
    # lifecycle / introspection

    def close(self) -> None:
        """Refuse further pins and publishes; outstanding pins stay valid."""
        with self._lock:
            self._current = None
            self._spares.clear()
            self._ops.clear()

    def metrics(self) -> dict:
        """Counters describing snapshot turnover (shape is part of the
        service's health output)."""
        with self._lock:
            current = self._current
            readpath = getattr(current.db, "readpath", None) if current is not None else None
            return {
                "epoch": current.epoch if current is not None else None,
                "active_pins": (current.pins if current is not None else 0)
                + sum(spare.pins for spare in self._spares),
                "publishes": self._publishes,
                "replica_clones": self._clones,
                "drain_waits": self._drain_waits,
                "clone_fallbacks": self._clone_fallbacks,
                "pending_ops": len(self._ops),
                "readpath": readpath.stats() if readpath is not None else None,
            }
