"""`QueryContext` — deadlines and resource budgets for one query.

Queries in this system are read-only, so cancellation is purely
cooperative: the join algorithms call :meth:`QueryContext.tick` (amortized
O(1), a clock read every ``check_every`` ticks) and
:meth:`QueryContext.charge_rows` at natural loop boundaries, and the
context raises a typed :class:`~repro.errors.DeadlineExceeded` /
:class:`~repro.errors.ResourceExhausted` out of the query.  Because no
structure is mutated between checkpoints, an aborted query leaves the
database exactly as it found it — the property the fault-drill suite
asserts.

The clock is injectable (``clock=``) so tests can drive deadline behaviour
deterministically; production code uses :func:`time.monotonic`.
"""

from __future__ import annotations

import time

from repro.errors import DeadlineExceeded, QueryCancelled, ResourceExhausted

__all__ = ["QueryContext"]

#: How many ticks pass between deadline clock reads.  Power of two so the
#: modulo compiles to a mask; 64 keeps worst-case overrun tiny while making
#: the common case a single integer increment.
_CHECK_EVERY = 64


class QueryContext:
    """Deadline, row budget and stack-depth budget for a single query.

    Parameters
    ----------
    timeout:
        Seconds from now until the deadline, or ``None`` for no deadline.
    max_result_rows:
        Upper bound on result pairs/rows a query may produce.
    max_stack_depth:
        Upper bound on candidate-ancestor stack depth inside the join
        algorithms (guards pathological nesting).
    check_every:
        Ticks between clock reads (exposed for tests).
    clock:
        Monotonic clock, injectable for deterministic tests.
    trace:
        Optional :class:`~repro.obs.trace.Trace`; when set, the join and
        path-query hot paths record timed spans into it.  ``None`` (the
        default) keeps tracing at a single ``is None`` check per site.
    """

    __slots__ = (
        "_clock",
        "_deadline",
        "_check_every",
        "_ticks",
        "_rows",
        "max_result_rows",
        "max_stack_depth",
        "_cancelled",
        "trace",
    )

    def __init__(
        self,
        *,
        timeout: float | None = None,
        deadline: float | None = None,
        max_result_rows: int | None = None,
        max_stack_depth: int | None = None,
        check_every: int = _CHECK_EVERY,
        clock=time.monotonic,
        trace=None,
    ):
        if timeout is not None and deadline is not None:
            raise ValueError("pass timeout or deadline, not both")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self._clock = clock
        if timeout is not None:
            deadline = clock() + timeout
        self._deadline = deadline
        self._check_every = check_every
        self._ticks = 0
        self._rows = 0
        self.max_result_rows = max_result_rows
        self.max_stack_depth = max_stack_depth
        self._cancelled: str | None = None
        self.trace = trace

    # ------------------------------------------------------------------
    # introspection

    @property
    def deadline(self) -> float | None:
        """Absolute deadline on this context's clock, or ``None``."""
        return self._deadline

    @property
    def ticks(self) -> int:
        """Checkpoints passed so far (tests use this to prove threading)."""
        return self._ticks

    @property
    def rows(self) -> int:
        """Result rows charged so far."""
        return self._rows

    def remaining(self) -> float | None:
        """Seconds until the deadline (negative when past), or ``None``."""
        if self._deadline is None:
            return None
        return self._deadline - self._clock()

    # ------------------------------------------------------------------
    # cancellation checkpoints

    def cancel(self, reason: str = "cancelled by caller") -> None:
        """Request external cancellation; the next checkpoint raises."""
        self._cancelled = reason

    def tick(self) -> None:
        """Cooperative checkpoint: cheap counter, occasional clock read."""
        self._ticks += 1
        if self._cancelled is not None:
            raise QueryCancelled(self._cancelled)
        if self._deadline is not None and self._ticks % self._check_every == 0:
            self.check_deadline()

    def check_deadline(self) -> None:
        """Unconditional deadline check (used at loop entry/exit)."""
        if self._cancelled is not None:
            raise QueryCancelled(self._cancelled)
        if self._deadline is not None and self._clock() > self._deadline:
            raise DeadlineExceeded(
                f"query exceeded its deadline by "
                f"{self._clock() - self._deadline:.3f}s "
                f"(after {self._ticks} checkpoints, {self._rows} rows)"
            )

    def charge_rows(self, n: int) -> None:
        """Charge ``n`` result rows against the row budget."""
        if n <= 0:
            return
        self._rows += n
        if self.max_result_rows is not None and self._rows > self.max_result_rows:
            raise ResourceExhausted(
                f"query produced {self._rows} result rows, over the "
                f"budget of {self.max_result_rows}"
            )

    def charge_depth(self, depth: int) -> None:
        """Validate a candidate-stack depth against the depth budget."""
        if self.max_stack_depth is not None and depth > self.max_stack_depth:
            raise ResourceExhausted(
                f"join stack depth {depth} over the budget of "
                f"{self.max_stack_depth}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QueryContext deadline={self._deadline} rows={self._rows}"
            f"/{self.max_result_rows} ticks={self._ticks}>"
        )
