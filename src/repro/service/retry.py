"""Shared retry-with-backoff policy for every transient-failure site.

Three subsystems retry transient rejections: admission control retries
:class:`~repro.errors.Busy` on behalf of impatient callers, the
replication heartbeat retries :class:`~repro.errors.ChannelCut` through
partitions, and the network client retries :class:`~repro.errors
.Overloaded` sheds.  They must share one policy — capped exponential
backoff with **full jitter** (the AWS-style scheme: sleeping a uniform
random fraction of the cap de-correlates retry storms) — and one set of
metrics, so a storm anywhere shows up in the same ``service.retry.*``
instruments.

Both the sleep function and the policy's RNG are injectable, so tests
drive retries deterministically and instantaneously;
:func:`retry_with_backoff_async` is the same loop for coroutine callers
(``sleep`` defaults to :func:`asyncio.sleep`).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.errors import Busy
from repro.obs.metrics import LATENCY_BUCKETS, METRICS

__all__ = ["BackoffPolicy", "retry_with_backoff", "retry_with_backoff_async"]

_M_RETRY_ATTEMPTS = METRICS.counter(
    "service.retry.attempts", unit="retries", site="retry_with_backoff"
)
_M_RETRY_GIVEUPS = METRICS.counter(
    "service.retry.giveups", unit="requests", site="retry_with_backoff"
)
_H_RETRY_SLEEP = METRICS.histogram(
    "service.retry.sleep_seconds",
    unit="seconds",
    site="retry_with_backoff",
    boundaries=LATENCY_BUCKETS,
)


@dataclass
class BackoffPolicy:
    """Capped exponential backoff with full jitter.

    Attempt ``n`` (0-based) sleeps ``uniform(0, min(max_delay,
    base_delay * multiplier**n))`` seconds.
    """

    retries: int = 5
    base_delay: float = 0.01
    max_delay: float = 0.5
    multiplier: float = 2.0
    rng: random.Random = field(default_factory=random.Random)

    def delay(self, attempt: int) -> float:
        cap = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        return self.rng.uniform(0.0, cap)


def _before_sleep(policy: BackoffPolicy, attempt: int) -> float | None:
    """Common bookkeeping for one failed attempt.

    Returns the delay to sleep, or ``None`` when the policy is exhausted
    (the caller re-raises).  Each retry bumps ``service.retry.attempts``
    and records its sleep in ``service.retry.sleep_seconds``; exhaustion
    bumps ``service.retry.giveups`` — retry storms show up in ``stats``
    instead of only as latency.
    """
    if attempt >= policy.retries:
        if METRICS.enabled:
            _M_RETRY_GIVEUPS.inc()
        return None
    delay = policy.delay(attempt)
    if METRICS.enabled:
        _M_RETRY_ATTEMPTS.inc()
        _H_RETRY_SLEEP.observe(delay)
    return delay


def retry_with_backoff(
    fn,
    *,
    policy: BackoffPolicy | None = None,
    retry_on=(Busy,),
    sleep=time.sleep,
):
    """Call ``fn()``; on a transient rejection, back off and retry.

    Retries only exceptions in ``retry_on`` (default: ``Busy``), up to
    ``policy.retries`` times; the final failure propagates.  ``sleep`` is
    injectable so tests can run instantaneously.
    """
    if policy is None:
        policy = BackoffPolicy()
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on:
            delay = _before_sleep(policy, attempt)
            if delay is None:
                raise
            sleep(delay)
            attempt += 1


async def retry_with_backoff_async(
    fn,
    *,
    policy: BackoffPolicy | None = None,
    retry_on=(Busy,),
    sleep=None,
):
    """:func:`retry_with_backoff` for coroutine callers.

    ``fn`` is an async callable invoked with no arguments; ``sleep`` is an
    async callable (default :func:`asyncio.sleep`).  Shares the sync
    helper's policy and ``service.retry.*`` metrics.
    """
    import asyncio

    if policy is None:
        policy = BackoffPolicy()
    if sleep is None:
        sleep = asyncio.sleep
    attempt = 0
    while True:
        try:
            return await fn()
        except retry_on:
            delay = _before_sleep(policy, attempt)
            if delay is None:
                raise
            await sleep(delay)
            attempt += 1
