"""A circuit breaker for automatic maintenance.

Automatic repack/compact is exactly the kind of background work that can
fail repeatedly for one persistent reason (a poisoned segment, an
exhausted disk in durable mode) — and re-attempting it on every write
turns one fault into a hot loop that starves queries.  The breaker wraps
those attempts with the classic three-state protocol:

- **closed** — attempts run; ``failure_threshold`` *consecutive* failures
  trip the breaker;
- **open** — attempts are refused (:class:`~repro.errors.CircuitOpenError`)
  until ``reset_timeout`` elapses; the service keeps serving reads in
  degraded mode meanwhile;
- **half-open** — one probe attempt is allowed; success closes the
  breaker, failure re-opens it and restarts the timeout.

The clock is injectable so tests drive state transitions deterministically.
"""

from __future__ import annotations

import threading
import time

from repro.errors import CircuitOpenError
from repro.obs.metrics import METRICS

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

_M_TRANSITIONS = METRICS.counter(
    "service.breaker.transitions",
    unit="transitions",
    site="CircuitBreaker (any state change)",
)

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self._failure_threshold = failure_threshold
        self._reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self._trips = 0
        self._total_failures = 0
        self._total_successes = 0

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """``closed``/``open``/``half_open`` (time-aware: an expired open
        breaker reports ``half_open``)."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self._reset_timeout
        ):
            self._state = HALF_OPEN
            self._probing = False
            if METRICS.enabled:
                _M_TRANSITIONS.inc()
        return self._state

    def allow(self) -> bool:
        """True when an attempt may run now (reserves the half-open probe)."""
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def call(self, fn):
        """Run ``fn()`` under the breaker; refuse when open.

        Success and failure are recorded; the underlying exception
        propagates after being counted.
        """
        if not self.allow():
            raise CircuitOpenError(
                f"circuit breaker is {self.state} "
                f"({self._consecutive_failures} consecutive failures); "
                f"retry after {self._reset_timeout:.1f}s"
            )
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def record_success(self) -> None:
        with self._lock:
            self._total_successes += 1
            self._consecutive_failures = 0
            if self._state != CLOSED and METRICS.enabled:
                _M_TRANSITIONS.inc()
            self._state = CLOSED
            self._probing = False
            self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self._total_failures += 1
            self._consecutive_failures += 1
            state = self._state_locked()
            if state == HALF_OPEN or (
                state == CLOSED
                and self._consecutive_failures >= self._failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._probing = False
                self._trips += 1
                if METRICS.enabled:
                    _M_TRANSITIONS.inc()

    def metrics(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "trips": self._trips,
                "failures": self._total_failures,
                "successes": self._total_successes,
            }
