"""Line-oriented serving loop for ``python -m repro serve``.

One command per line on the input stream, one ``ok``/``error`` report per
command on the output stream — a deliberately plain protocol that works
over a pipe, a terminal, or a test harness without any dependency beyond
the standard library.  All database access goes through the
:class:`~repro.service.server.DatabaseService`, so every command gets the
service's admission control, snapshot isolation, deadlines, and graceful
degradation; a ``Busy`` or ``DeadlineExceeded`` is reported and the loop
keeps serving.

Commands::

    query <path-expression>          count + spans of matches
    twig <twig-expression>           branching-pattern query (holistic)
    join <anc> <desc> [algorithm]    structural join (default: auto)
    insert <position|end> <xml...>   insert the rest of the line
    remove <position> <length>       remove a character span
    trace query <path-expression>    run a query, print per-span timings
    trace twig <twig-expression>     run a twig query, print spans
    trace join <anc> <desc> [algo]   run a join, print per-span timings
    repack <sid> | compact           breaker-guarded maintenance
    maintain                         sample pressure, run the plan
    pressure | health | stats        JSON status output
    repl-status                      replication term/lag/role per node
    promote <node>                   fail over to a follower (fenced term)
    shutdown                         graceful drain, then exit
    help | quit | exit
"""

from __future__ import annotations

import json

from repro.errors import ReproError, ServiceClosed
from repro.service.server import DatabaseService

__all__ = ["ServiceShell"]

_HELP = (
    "commands: query <expr> | twig <expr> | join <anc> <desc> [algo] | "
    "insert <pos|end> <xml> | remove <pos> <len> | "
    "trace query <expr> | trace twig <expr> | "
    "trace join <anc> <desc> [algo] | "
    "repack <sid> | compact | "
    "maintain | pressure | health | stats | "
    "repl-status | promote <node> | shutdown | help | quit"
)


class ServiceShell:
    """Executes shell commands against a :class:`DatabaseService`.

    ``run()`` drains the input stream; ``handle(line)`` executes one
    command and returns ``False`` when the session should end (making the
    protocol unit-testable without threads or pipes).
    """

    def __init__(self, service: DatabaseService, in_stream, out_stream):
        self.service = service
        self._in = in_stream
        self._out = out_stream

    def run(self) -> None:
        """Serve until EOF, ``quit``/``shutdown``, or Ctrl-C.

        Every exit path ends in :meth:`drain`: the service refuses new
        requests with a typed :class:`~repro.errors.Draining` while
        admitted work (background maintenance included) finishes — the
        same graceful-drain contract as the TCP front end, and never a
        raw traceback on the operator's terminal.
        """
        try:
            for line in self._in:
                if not self.handle(line):
                    break
        except KeyboardInterrupt:
            self._print("ok interrupted; draining")
        finally:
            self.drain()

    def drain(self) -> None:
        """Stop accepting new work; in-flight requests finish normally.

        Safe to call repeatedly and on an already-closed service (the
        caller owns the final ``close()``).
        """
        try:
            self.service.begin_drain()
        except Exception:  # pragma: no cover - nothing to drain
            pass

    def handle(self, line: str) -> bool:
        line = line.strip()
        if not line:
            return True
        verb, _, rest = line.partition(" ")
        verb = verb.lower()
        if verb in ("quit", "exit"):
            self._print("ok bye")
            return False
        if verb == "shutdown":
            self.drain()
            self._print("ok draining; bye")
            return False
        try:
            # Dashed verbs (repl-status) map to underscored handlers.
            handler = getattr(self, f"_cmd_{verb.replace('-', '_')}", None)
            if handler is None:
                self._print(f"error unknown command {verb!r}; try 'help'")
            else:
                handler(rest.strip())
        except ServiceClosed:
            self._print("error service closed")
            return False
        except ReproError as exc:
            self._print(f"error {type(exc).__name__}: {exc}")
        except ValueError as exc:
            self._print(f"error bad argument: {exc}")
        return True

    # ------------------------------------------------------------------

    def _cmd_help(self, rest: str) -> None:
        self._print(f"ok {_HELP}")

    def _cmd_query(self, rest: str) -> None:
        if not rest:
            raise ValueError("query needs a path expression")
        records = self.service.query(rest)
        self._print(f"ok {len(records)} match(es)")
        for record in records:
            self._print(f"  sid={record.sid} start={record.start} "
                        f"end={record.end} level={record.level}")

    def _cmd_twig(self, rest: str) -> None:
        if not rest:
            raise ValueError("twig needs a twig expression")
        records = self.service.twig(rest)
        self._print(f"ok {len(records)} match(es)")
        for record in records:
            self._print(f"  sid={record.sid} start={record.start} "
                        f"end={record.end} level={record.level}")

    def _cmd_join(self, rest: str) -> None:
        parts = rest.split()
        if len(parts) not in (2, 3):
            raise ValueError("join needs: <ancestor> <descendant> [algorithm]")
        algorithm = parts[2] if len(parts) == 3 else "auto"
        pairs = self.service.join(parts[0], parts[1], algorithm=algorithm)
        self._print(f"ok {len(pairs)} pair(s)")

    def _cmd_insert(self, rest: str) -> None:
        where, _, fragment = rest.partition(" ")
        if not fragment:
            raise ValueError("insert needs: <position|end> <xml fragment>")
        position = None if where == "end" else int(where)
        receipt = self.service.insert(fragment, position)
        self._print(f"ok inserted segment {receipt.sid} at {receipt.gp}")

    def _cmd_remove(self, rest: str) -> None:
        parts = rest.split()
        if len(parts) != 2:
            raise ValueError("remove needs: <position> <length>")
        outcome = self.service.remove(int(parts[0]), int(parts[1]))
        self._print(f"ok removed {outcome.elements_removed} element record(s)")

    def _cmd_trace(self, rest: str) -> None:
        kind, _, spec = rest.partition(" ")
        kind = kind.lower()
        spec = spec.strip()
        if kind == "query":
            if not spec:
                raise ValueError("trace query needs a path expression")
            result, spans = self.service.trace_query(spec)
            self._print(f"ok {len(result)} match(es), {len(spans)} span(s)")
        elif kind == "twig":
            if not spec:
                raise ValueError("trace twig needs a twig expression")
            result, spans = self.service.trace_twig(spec)
            self._print(f"ok {len(result)} match(es), {len(spans)} span(s)")
        elif kind == "join":
            parts = spec.split()
            if len(parts) not in (2, 3):
                raise ValueError(
                    "trace join needs: <ancestor> <descendant> [algorithm]"
                )
            algorithm = parts[2] if len(parts) == 3 else "lazy"
            result, spans = self.service.trace_join(
                parts[0], parts[1], algorithm=algorithm
            )
            self._print(f"ok {len(result)} pair(s), {len(spans)} span(s)")
        else:
            raise ValueError(
                "trace needs: query <expr> | twig <expr> | join <anc> <desc>"
            )
        for span in spans:
            self._print("  " + json.dumps(span, sort_keys=True))

    def _cmd_repack(self, rest: str) -> None:
        if not rest:
            raise ValueError("repack needs: <sid>")
        self.service.repack(int(rest))
        self._print("ok repacked")

    def _cmd_compact(self, rest: str) -> None:
        result = self.service.compact()
        # A sharded primary compacts every shard and returns one
        # CompactionResult per shard; report the aggregate.
        results = result if isinstance(result, list) else [result]
        before = sum(r.segments_before for r in results)
        after = sum(r.segments_after for r in results)
        self._print(f"ok compacted {before} -> {after} segment(s)")

    def _cmd_maintain(self, rest: str) -> None:
        report = self.service.run_maintenance()
        self._print(f"ok pressure {report.level}; "
                    f"breaker {self.service.health()['breaker']['state']}")

    def _cmd_pressure(self, rest: str) -> None:
        report = self.service.check_pressure()
        self._print("ok " + json.dumps(report.as_dict(), sort_keys=True))

    def _cmd_health(self, rest: str) -> None:
        self._print("ok " + json.dumps(self.service.health(), sort_keys=True))

    def _cmd_stats(self, rest: str) -> None:
        self._print("ok " + json.dumps(self.service.stats(), sort_keys=True))

    def _cmd_repl_status(self, rest: str) -> None:
        status = self.service.replication_status()
        if status is None:
            self._print("ok replication disabled (serve with --replicas N)")
        else:
            self._print("ok " + json.dumps(status, sort_keys=True))

    def _cmd_promote(self, rest: str) -> None:
        if not rest:
            raise ValueError("promote needs: <node id>")
        node = self.service.promote(int(rest))
        self._print(f"ok node {node.node_id} promoted to primary "
                    f"at term {node.term}")

    def _print(self, text: str) -> None:
        print(text, file=self._out, flush=True)
