"""Prime number utilities for the PRIME labeling scheme (reference [12]).

Pure-Python prime generation (sieve with on-demand growth) and the Chinese
Remainder Theorem solver used to compute the scheme's "simultaneous
congruence" values.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from math import prod

__all__ = ["PrimeSource", "crt", "is_prime"]


def is_prime(n: int) -> bool:
    """Deterministic primality test (trial division; adequate for our sizes)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


class PrimeSource:
    """A growing, cached supply of primes.

    ``floor`` forces every produced prime to exceed a bound — the PRIME
    scheme needs self-label primes larger than any document-order number so
    that ``sc mod p`` recovers orders exactly.
    """

    def __init__(self, floor: int = 0):
        self._floor = floor
        self._primes: list[int] = []
        self._next_candidate = max(2, floor + 1)

    @property
    def floor(self) -> int:
        return self._floor

    def _grow(self) -> None:
        candidate = self._next_candidate
        while not is_prime(candidate):
            candidate += 1
        self._primes.append(candidate)
        self._next_candidate = candidate + 1

    def nth(self, index: int) -> int:
        """The ``index``-th prime above the floor (0-based)."""
        while len(self._primes) <= index:
            self._grow()
        return self._primes[index]

    def take(self, count: int) -> list[int]:
        """The first ``count`` primes above the floor."""
        while len(self._primes) < count:
            self._grow()
        return self._primes[:count]

    def __iter__(self) -> Iterator[int]:
        index = 0
        while True:
            yield self.nth(index)
            index += 1


def crt(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Solve ``x ≡ residues[i] (mod moduli[i])`` for pairwise-coprime moduli.

    Returns the unique solution in ``[0, prod(moduli))``.  This is the
    "simultaneous congruence" computation whose cost dominates PRIME
    insertions (Section 5.4): the moduli are the K self-label primes of one
    group and the residues their document-order numbers.
    """
    if len(residues) != len(moduli):
        raise ValueError("residues and moduli must have equal length")
    if not moduli:
        return 0
    total = prod(moduli)
    x = 0
    for residue, modulus in zip(residues, moduli):
        partial = total // modulus
        x += residue * partial * pow(partial, -1, modulus)
    return x % total
