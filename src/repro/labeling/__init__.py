"""Labeling-scheme comparators.

- :class:`~repro.labeling.interval.IntervalLabelingIndex` — traditional
  global interval labels with relabel-on-update (the Fig. 16 baseline);
- :class:`~repro.labeling.prime.PrimeLabeling` — the PRIME immutable scheme
  with simultaneous-congruence order maintenance (the Fig. 17 baseline).
"""

from repro.labeling.interval import IntervalElement, IntervalLabelingIndex
from repro.labeling.prime import InsertCost, PrimeLabeling, PrimeNode
from repro.labeling.primes import PrimeSource, crt, is_prime

__all__ = [
    "IntervalLabelingIndex",
    "IntervalElement",
    "PrimeLabeling",
    "PrimeNode",
    "InsertCost",
    "PrimeSource",
    "crt",
    "is_prime",
]
