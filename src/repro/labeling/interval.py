"""Traditional interval labeling with relabel-on-update (Fig. 16 comparator).

The "traditional approach" of Section 5.4: every element is labeled by its
*global* ``(start, end, level)`` interval and the labels are the B+-tree
keys.  Queries are fast (plain Stack-Tree-Desc over integers), but a
structural update must rewrite the label of every element at or after the
edit point — delete + reinsert of O(NE) index records — which is exactly the
cost blow-up Fig. 16 shows.

The class intentionally mirrors the lazy database's insert/remove interface
so the benchmark harness can drive both identically.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator
from typing import NamedTuple

from repro.btree import BPlusTree
from repro.core.taglist import TagRegistry
from repro.errors import InvalidSegmentError
from repro.xml.parser import parse_fragment

__all__ = ["IntervalElement", "IntervalLabelingIndex"]

_ORDER = 64


class IntervalElement(NamedTuple):
    """A globally labeled element: ``[start, end)`` span plus depth."""

    start: int
    end: int
    level: int


class IntervalLabelingIndex:
    """Global-interval element index with relabeling updates."""

    def __init__(self):
        # Keys: (tid, start, end, level).  Values unused.
        self._tree = BPlusTree(order=_ORDER)
        self.tags = TagRegistry()
        self._document_length = 0
        self._relabelled_last_update = 0

    # ------------------------------------------------------------------
    # properties

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def document_length(self) -> int:
        return self._document_length

    @property
    def relabelled_last_update(self) -> int:
        """Index records rewritten by the most recent update (cost meter)."""
        return self._relabelled_last_update

    # ------------------------------------------------------------------
    # updates

    def insert_fragment(self, fragment: str, position: int | None = None) -> int:
        """Insert an XML fragment at ``position``; relabel what follows.

        Every existing element whose span starts at/after ``position`` is
        shifted right by the fragment length; enclosing elements' ends are
        extended.  All changed keys are deleted and reinserted.  Returns the
        number of elements the fragment added.
        """
        if position is None:
            position = self._document_length
        if not (0 <= position <= self._document_length):
            raise InvalidSegmentError(
                f"insert position {position} outside document "
                f"[0, {self._document_length}]"
            )
        document = parse_fragment(fragment)
        length = len(fragment)

        base_level = self._depth_at(position)
        self._shift_for_insert(position, length)
        for element in document.elements:
            tid = self.tags.intern(element.tag)
            self._tree.insert(
                (
                    tid,
                    position + element.start,
                    position + element.end,
                    base_level + element.level,
                ),
                None,
            )
        self._document_length += length
        return len(document.elements)

    def _depth_at(self, position: int) -> int:
        """Depth of the innermost element strictly containing ``position``."""
        best = 0
        for tid, start, end, level in self._tree.keys():
            if start < position < end and level > best:
                best = level
        return best

    def _shift_for_insert(self, position: int, length: int) -> None:
        """Rewrite the labels of every element affected by an insertion."""
        changed: list[tuple[tuple, tuple]] = []
        for key in self._tree.keys():
            tid, start, end, level = key
            new_start = start + length if start >= position else start
            new_end = end + length if end > position else end
            if new_start != start or new_end != end:
                changed.append((key, (tid, new_start, new_end, level)))
        for old_key, _ in changed:
            self._tree.delete(old_key)
        for _, new_key in changed:
            self._tree.insert(new_key, None)
        self._relabelled_last_update = len(changed)

    def remove_span(self, position: int, length: int) -> Counter:
        """Remove a character span; drop covered elements, relabel the rest.

        Elements entirely inside the span are deleted; elements after it
        shift left; enclosing elements shrink.  Returns per-tid removal
        counts (mirroring the lazy database's bookkeeping).
        """
        end = position + length
        if position < 0 or end > self._document_length:
            raise InvalidSegmentError(
                f"removal span [{position}, {end}) outside document "
                f"[0, {self._document_length})"
            )
        removed: Counter = Counter()
        doomed: list[tuple] = []
        changed: list[tuple[tuple, tuple]] = []
        for key in self._tree.keys():
            tid, start, elem_end, level = key
            if start >= position and elem_end <= end:
                doomed.append(key)
                removed[tid] += 1
                continue
            new_start = start - length if start >= end else start
            new_end = elem_end - length if elem_end >= end else elem_end
            if start < position < elem_end and elem_end < end:
                # Right part clipped off (non-well-formed edit); shrink.
                new_end = position
            if new_start != start or new_end != elem_end:
                changed.append((key, (tid, new_start, new_end, level)))
        for key in doomed:
            self._tree.delete(key)
        for old_key, _ in changed:
            self._tree.delete(old_key)
        for _, new_key in changed:
            self._tree.insert(new_key, None)
        self._relabelled_last_update = len(changed)
        self._document_length -= length
        return removed

    # ------------------------------------------------------------------
    # queries

    def elements(self, tag: str) -> list[IntervalElement]:
        """All elements of ``tag``, sorted by global start (join input)."""
        tid = self.tags.tid_of(tag)
        if tid is None:
            return []
        out = [
            IntervalElement(start, end, level)
            for (_, start, end, level), _ in self._tree.range((tid,), (tid + 1,))
        ]
        out.sort(key=lambda e: e.start)
        return out

    def all_records(self) -> Iterator[tuple[int, int, int, int]]:
        """Every (tid, start, end, level) key, index order."""
        return self._tree.keys()

    def check_invariants(self) -> None:
        """Structural checks: tree invariants plus span sanity."""
        self._tree.check_invariants()
        for tid, start, end, level in self._tree.keys():
            assert 0 <= start < end <= self._document_length, (
                f"element span [{start}, {end}) escapes document"
            )
            assert level >= 1
