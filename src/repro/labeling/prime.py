"""The PRIME labeling scheme — Wu, Lee & Hsu, ICDE 2004 (reference [12]).

The immutable-labeling comparator of the paper's Fig. 17 experiment.

Scheme recap:

- every node gets a distinct prime as its *self label*;
- a node's *label* is the product of its self label and its parent's label —
  i.e. the product of the self labels on its root path — so ``X`` is an
  ancestor of ``Y`` iff ``label(Y) mod label(X) == 0``.  Labels never change
  on insertion: that is the scheme's selling point;
- *document order* is kept outside the labels, in a table of **simultaneous
  congruence (SC) values**: nodes are grouped K at a time and each group
  stores the CRT solution of ``x ≡ order(v) (mod self(v))`` over its members.
  A node's order is recovered as ``sc(group) mod self(v)``.

The cost the paper measures: inserting a node in the middle shifts the order
of every following node, so every group from the insertion point on must
recompute its SC value — a CRT over K large primes each — which is exactly
why PRIME loses to the lazy scheme by orders of magnitude.

Self-label primes are drawn above a ``capacity`` floor so that recovered
orders (which must stay below every modulus) are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LabelingError
from repro.labeling.primes import PrimeSource, crt

__all__ = ["PrimeLabeling", "PrimeNode", "InsertCost"]

_DEFAULT_GROUP = 10
_DEFAULT_CAPACITY = 1 << 16


@dataclass
class PrimeNode:
    """One labeled node: its self-label prime and full (product) label."""

    nid: int
    self_label: int
    label: int
    parent: "PrimeNode | None" = field(default=None, repr=False)


@dataclass
class InsertCost:
    """Work accounting for one insertion (benchmarked in Fig. 17)."""

    groups_recomputed: int = 0
    crt_congruences: int = 0


class PrimeLabeling:
    """PRIME-labeled document with SC-table order maintenance.

    Parameters
    ----------
    group_size:
        K — nodes per simultaneous-congruence group (the Fig. 17 knob).
    capacity:
        Upper bound on the number of nodes; self-label primes exceed it so
        order recovery is exact.
    """

    def __init__(
        self, group_size: int = _DEFAULT_GROUP, capacity: int = _DEFAULT_CAPACITY
    ):
        if group_size < 1:
            raise LabelingError(f"group_size must be >= 1, got {group_size}")
        self._group_size = group_size
        self._capacity = capacity
        self._primes = PrimeSource(floor=capacity)
        self._nodes: dict[int, PrimeNode] = {}
        self._order: list[int] = []  # nids in document order
        self._sc_values: list[int] = []  # one per group of K order slots
        self._next_nid = 1
        self._next_prime_index = 0

    # ------------------------------------------------------------------
    # properties

    @property
    def group_size(self) -> int:
        return self._group_size

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, nid: int) -> PrimeNode:
        try:
            return self._nodes[nid]
        except KeyError:
            raise LabelingError(f"unknown node id {nid}") from None

    # ------------------------------------------------------------------
    # labeling

    def _fresh_prime(self) -> int:
        prime = self._primes.nth(self._next_prime_index)
        self._next_prime_index += 1
        return prime

    def insert(
        self,
        parent_nid: int | None,
        order_index: int | None = None,
        cost: InsertCost | None = None,
    ) -> int:
        """Insert a node under ``parent_nid`` at ``order_index`` in doc order.

        ``order_index`` defaults to the end (appending).  Existing labels are
        untouched (immutability); the SC table is recomputed for every group
        at or after the insertion point, which is the measured cost —
        pass an :class:`InsertCost` to collect it.

        Returns the new node id.
        """
        if len(self._nodes) >= self._capacity:
            raise LabelingError(
                f"capacity {self._capacity} exhausted; orders would no "
                "longer be recoverable from SC values"
            )
        if order_index is None:
            order_index = len(self._order)
        if not (0 <= order_index <= len(self._order)):
            raise LabelingError(
                f"order_index {order_index} out of range "
                f"[0, {len(self._order)}]"
            )
        parent = self._nodes[parent_nid] if parent_nid is not None else None
        self_label = self._fresh_prime()
        label = self_label * (parent.label if parent is not None else 1)
        nid = self._next_nid
        self._next_nid += 1
        self._nodes[nid] = PrimeNode(nid, self_label, label, parent)
        self._order.insert(order_index, nid)
        self._recompute_sc_from(order_index // self._group_size, cost)
        return nid

    def delete(self, nid: int, cost: InsertCost | None = None) -> None:
        """Remove a (leaf) node; shifts following orders and recomputes SC."""
        node = self.node(nid)
        for other in self._nodes.values():
            if other.parent is node:
                raise LabelingError(f"node {nid} still has children")
        order_index = self._order.index(nid)
        del self._order[order_index]
        del self._nodes[nid]
        self._recompute_sc_from(order_index // self._group_size, cost)

    def _recompute_sc_from(self, first_group: int, cost: InsertCost | None) -> None:
        """Recompute SC values for every group from ``first_group`` on.

        Orders of all nodes from the touched group onward changed, so each
        of those groups solves a fresh K-congruence CRT — the dominant cost
        of PRIME updates.
        """
        k = self._group_size
        group_count = (len(self._order) + k - 1) // k
        del self._sc_values[first_group:]
        for group in range(first_group, group_count):
            members = self._order[group * k : (group + 1) * k]
            moduli = [self._nodes[m].self_label for m in members]
            residues = [group * k + offset for offset in range(len(members))]
            self._sc_values.append(crt(residues, moduli))
            if cost is not None:
                cost.groups_recomputed += 1
                cost.crt_congruences += len(members)

    # ------------------------------------------------------------------
    # queries

    def is_ancestor(self, anc_nid: int, desc_nid: int) -> bool:
        """Prime-divisibility ancestor test: ``label(Y) mod label(X) == 0``."""
        anc = self.node(anc_nid)
        desc = self.node(desc_nid)
        if anc_nid == desc_nid:
            return False
        return desc.label % anc.label == 0

    def document_order(self, nid: int) -> int:
        """Recover a node's document order from the SC table.

        This goes through ``sc mod self_label`` — *not* through the order
        list — so tests exercising it validate the CRT bookkeeping.
        """
        node = self.node(nid)
        # The node's group is found via the order list (the scheme stores a
        # node → group map; the list is our equivalent).
        order_index = self._order.index(nid)
        sc = self._sc_values[order_index // self._group_size]
        return sc % node.self_label

    def check_invariants(self) -> None:
        """Validate SC-recovered orders against ground truth."""
        for true_order, nid in enumerate(self._order):
            recovered = self.document_order(nid)
            assert recovered == true_order, (
                f"SC table broken: node {nid} recovered order {recovered}, "
                f"true {true_order}"
            )
