"""Timing and reporting utilities shared by the benchmark suite.

Small on purpose: a monotonic timer helper, a result-table formatter that
prints paper-style rows, and a container for (x, series...) sweeps.  The
``benchmarks/`` scripts use these both under pytest-benchmark and as
directly runnable ``main()`` programs that print each figure's series.

Every runnable benchmark writes the same self-describing JSON **envelope**
(:func:`envelope` / :func:`write_envelope`): schema version, benchmark
name, workload parameters, the tables/sweeps it printed, and a snapshot of
the process metric registry — so a ``BENCH_*.json`` can be interpreted
without re-reading the script that produced it.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import METRICS

__all__ = [
    "measure",
    "Table",
    "Sweep",
    "SCHEMA",
    "metrics_snapshot",
    "envelope",
    "write_envelope",
]

#: Envelope schema identifier.  Bump when the envelope layout changes.
#: ``repro-bench/2`` added: uniform envelope for every script, workload
#: params, and the embedded metric snapshot.
SCHEMA = "repro-bench/2"


def measure(fn: Callable[[], object], *, repeat: int = 3) -> float:
    """Best-of-``repeat`` wall time of ``fn()`` in seconds.

    Minimum over repeats is the standard low-noise estimator for
    deterministic workloads (what ``timeit`` does).
    """
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


@dataclass
class Table:
    """A printable result table with aligned columns.

    >>> t = Table("demo", ["n", "ms"])
    >>> t.add_row([10, 1.5])
    >>> print(t.format())  # doctest: +SKIP
    """

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, row: Iterable[object]) -> None:
        row = list(row)
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def _cells(self) -> list[list[str]]:
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.6g}"
            return str(value)

        return [self.headers] + [[fmt(v) for v in row] for row in self.rows]

    def format(self) -> str:
        """Render as an aligned text table."""
        cells = self._cells()
        widths = [
            max(len(row[col]) for row in cells) for col in range(len(self.headers))
        ]
        lines = [f"== {self.title} =="]
        for i, row in enumerate(cells):
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
            if i == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)

    def format_markdown(self) -> str:
        """Render as a GitHub-flavored markdown table (for EXPERIMENTS.md)."""
        cells = self._cells()
        lines = [
            "| " + " | ".join(cells[0]) + " |",
            "|" + "|".join("---" for _ in self.headers) + "|",
        ]
        for row in cells[1:]:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def print(self) -> None:
        print(self.format())
        print()

    def as_dict(self) -> dict:
        """JSON-serializable form for the benchmark envelope."""
        return {"title": self.title, "headers": list(self.headers),
                "rows": [list(row) for row in self.rows]}


@dataclass
class Sweep:
    """One experiment sweep: x values plus named y series."""

    x_name: str
    xs: list[object] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)

    def add(self, x: object, **values: float) -> None:
        self.xs.append(x)
        for name, value in values.items():
            self.series.setdefault(name, []).append(value)

    def to_table(self, title: str) -> Table:
        table = Table(title, [self.x_name] + list(self.series))
        for i, x in enumerate(self.xs):
            table.add_row([x] + [self.series[name][i] for name in self.series])
        return table

    def as_dict(self) -> dict:
        """JSON-serializable form for the benchmark envelope."""
        return {"x_name": self.x_name, "xs": list(self.xs),
                "series": {name: list(ys) for name, ys in self.series.items()}}


# ----------------------------------------------------------------------
# the self-describing result envelope (``BENCH_*.json``)


def metrics_snapshot() -> dict:
    """The process metric registry as plain dicts (see ``repro.obs``)."""
    return METRICS.snapshot()


def envelope(
    name: str,
    *,
    params: dict | None = None,
    tables: Iterable[Table] = (),
    sweeps: Iterable[Sweep] = (),
    results: dict | None = None,
) -> dict:
    """Assemble the uniform benchmark-result envelope.

    ``params`` records the workload knobs (sizes, repeat counts, modes);
    ``results`` carries any script-specific payload that is not naturally
    a table or sweep.  The metric snapshot is taken at call time, so call
    this *after* the measured work.

    Every envelope also carries a ``meta`` block with the active kernel
    and compile backends plus numpy availability, so BENCH diffs across
    machines (or across ``REPRO_*`` environments) are interpretable
    without reconstructing the run's environment.
    """
    from repro.joins import kernels

    return {
        "schema": SCHEMA,
        "benchmark": name,
        "meta": {
            "join_kernel": kernels.current_backend(),
            "compile_backend": kernels.current_compile_backend(),
            "numpy_available": kernels._numpy() is not None,
        },
        "params": dict(params or {}),
        "tables": [table.as_dict() for table in tables],
        "sweeps": [sweep.as_dict() for sweep in sweeps],
        "results": dict(results or {}),
        "metrics": metrics_snapshot(),
    }


def write_envelope(path, name: str, **kwargs) -> Path:
    """Write :func:`envelope` output to ``path`` and report where."""
    path = Path(path)
    path.write_text(
        json.dumps(envelope(name, **kwargs), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"[{name}] wrote {path}")
    return path
