"""Database-building helpers shared by the benchmark experiments.

All builders are deterministic (seeded) and work against either LD or LS
databases.  The central primitive is :func:`insert_under` — insert a
fragment just before a segment's root-element close tag — which lets the
experiments construct segment trees of any shape without tracking text.
"""

from __future__ import annotations

from repro.core.database import LazyXMLDatabase
from repro.errors import UpdateError
from repro.workloads.generator import generate_uniform_fragment, tag_pool

__all__ = [
    "insert_under",
    "build_uniform_segments",
    "parent_plan",
]


def insert_under(db: LazyXMLDatabase, parent_sid: int, fragment: str, root_tag: str):
    """Insert ``fragment`` at the end of segment ``parent_sid``'s content.

    The insertion position is just before the close tag of the parent
    segment's root element (whose tag name the caller supplies) — always a
    valid insertion point, and it nests the new segment inside the parent.
    """
    node = db.log.node(parent_sid)
    close_len = len(root_tag) + 3  # </tag>
    position = node.end - close_len
    return db.insert(fragment, position)


def parent_plan(n_segments: int, shape: str, branching: int = 8) -> list[int]:
    """Parent index for each of ``n_segments`` segments; -1 for the first.

    ``"nested"`` → a chain (segment i inside segment i-1): the paper's
    worst-case ER-tree.  ``"balanced"`` → a complete ``branching``-ary tree:
    the paper's realistic case.  ``"flat"`` → every segment directly under
    the first.
    """
    if shape == "nested":
        return [-1] + list(range(n_segments - 1))
    if shape == "balanced":
        return [-1] + [(i - 1) // branching for i in range(1, n_segments)]
    if shape == "flat":
        return [-1] + [0] * (n_segments - 1)
    raise UpdateError(f"unknown shape {shape!r}")


def build_uniform_segments(
    db: LazyXMLDatabase,
    n_segments: int,
    shape: str,
    *,
    elements_per_segment: int = 20,
    n_tags: int = 8,
    branching: int = 8,
) -> list[int]:
    """Populate ``db`` with uniform segments in the given ER-tree shape.

    Every segment contains every tag (``n_elements >= n_tags`` required) —
    the paper's worst case for tag-list growth (Fig. 11).  Returns the sids
    in insertion order.
    """
    if elements_per_segment < n_tags:
        raise UpdateError(
            "elements_per_segment must be >= n_tags so every segment "
            "contains every tag"
        )
    tags = tag_pool(n_tags)
    fragment = generate_uniform_fragment(elements_per_segment, tags)
    parents = parent_plan(n_segments, shape, branching)
    sids: list[int] = []
    for i in range(n_segments):
        if parents[i] < 0:
            receipt = db.insert(fragment, db.document_length)
        else:
            receipt = insert_under(db, sids[parents[i]], fragment, tags[0])
        sids.append(receipt.sid)
    return sids
