"""Benchmark harness: timing helpers, builders and per-figure experiments.

The heavy lifting for every figure lives in
:mod:`repro.bench.experiments`; the repository's ``benchmarks/`` directory
wraps those functions in pytest-benchmark tests and printable mains, and
``examples/reproduce_paper.py`` runs the full set.
"""

from repro.bench.builders import build_uniform_segments, insert_under, parent_plan
from repro.bench.experiments import (
    ablation_branch_strategy,
    ablation_push_optimizations,
    fig11_update_log,
    fig12_cross_join,
    fig13_segments,
    fig14_15_xmark,
    fig16_insert,
    fig17_element_insert,
    spine_document,
)
from repro.bench.harness import Sweep, Table, measure

__all__ = [
    "measure",
    "Table",
    "Sweep",
    "insert_under",
    "build_uniform_segments",
    "parent_plan",
    "spine_document",
    "fig11_update_log",
    "fig12_cross_join",
    "fig13_segments",
    "fig14_15_xmark",
    "fig16_insert",
    "fig17_element_insert",
    "ablation_push_optimizations",
    "ablation_branch_strategy",
]
