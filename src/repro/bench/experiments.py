"""Experiment implementations — one function per paper figure/table.

Each function builds its workload, measures, and returns
:class:`~repro.bench.harness.Table`/:class:`~repro.bench.harness.Sweep`
objects ready to print.  Sizes default to laptop-friendly scales (the
reproduced quantity is the *shape* of each figure, not the 2005 testbed's
absolute numbers); every knob is a parameter so the ``benchmarks/`` scripts
can raise scale.

Index (see DESIGN.md §3):

- :func:`fig11_update_log` — log size and build time vs #segments;
- :func:`fig12_cross_join` — LS/LD/STD join time vs % cross-segment joins;
- :func:`fig13_segments` — LD/STD join time vs #segments, fixed document;
- :func:`fig14_15_xmark` — XMark query cardinalities and join times;
- :func:`fig16_insert` — insert-one-segment time, LD vs relabeling;
- :func:`fig17_element_insert` — per-element insert time, LD/LS vs PRIME;
- :func:`ablation_push_optimizations`, :func:`ablation_branch_strategy` —
  design-choice ablations (DESIGN.md E9/E10).
"""

from __future__ import annotations

import random

from repro.bench.builders import build_uniform_segments, insert_under, parent_plan
from repro.bench.harness import Sweep, Table, measure
from repro.core.database import LazyXMLDatabase
from repro.core.join import JoinStatistics
from repro.core.update_log import UpdateLog
from repro.labeling.interval import IntervalLabelingIndex
from repro.labeling.prime import PrimeLabeling
from repro.workloads.chopper import apply_chop, chop_text
from repro.workloads.generator import generate_uniform_fragment, tag_pool
from repro.workloads.join_mix import sweep_configs, build_join_mix
from repro.workloads.xmark import XMARK_QUERIES, XMarkConfig, generate_site
from repro.xml.serializer import Node

__all__ = [
    "fig11_update_log",
    "fig12_cross_join",
    "fig13_segments",
    "fig14_15_xmark",
    "fig16_insert",
    "fig17_element_insert",
    "ablation_push_optimizations",
    "ablation_branch_strategy",
    "spine_document",
]

_MS = 1e3


# ----------------------------------------------------------------------
# Fig. 11 — update log size and build time


def fig11_update_log(
    segment_counts: tuple[int, ...] = (50, 100, 150, 200, 250, 300),
    shapes: tuple[str, ...] = ("balanced", "nested"),
    *,
    elements_per_segment: int = 24,
    n_tags: int = 8,
    repeat: int = 3,
) -> dict[str, Table]:
    """Fig. 11(a)+(b): update-log size (KB) and build time vs #segments.

    Worst-case workload per the paper: every segment contains every tag.
    Returns one table per shape with columns
    ``(segments, sbtree_kb, taglist_kb, total_kb, build_ms)``.
    """
    tables: dict[str, Table] = {}
    for shape in shapes:
        table = Table(
            f"Fig 11 — update log, {shape} ER-tree",
            ["segments", "sbtree_kb", "taglist_kb", "total_kb", "build_ms"],
        )
        max_count = max(segment_counts)
        db = LazyXMLDatabase(keep_text=False)
        ops: list[tuple[int, int, dict[str, int]]] = []  # replay script
        snapshots: dict[int, tuple[float, float, float]] = {}

        # Build once, recording each op and snapshotting sizes.
        tags = tag_pool(n_tags)
        fragment = generate_uniform_fragment(elements_per_segment, tags)
        from collections import Counter

        from repro.xml.parser import parse_fragment

        tag_counts = dict(Counter(e.tag for e in parse_fragment(fragment).elements))
        parents = parent_plan(max_count, shape)
        sids: list[int] = []
        for i in range(max_count):
            if parents[i] < 0:
                position = db.document_length
            else:
                node = db.log.node(sids[parents[i]])
                position = node.end - (len(tags[0]) + 3)
            ops.append((position, len(fragment), tag_counts))
            sids.append(db.insert(fragment, position).sid)
            if i + 1 in segment_counts:
                stats = db.stats()
                snapshots[i + 1] = (
                    stats.sbtree_bytes / 1024,
                    stats.taglist_bytes / 1024,
                    stats.total_bytes / 1024,
                )

        # Build-time measurement: replay the raw ops into a bare update log.
        def replay(count: int) -> None:
            log = UpdateLog()
            for position, length, counts in ops[:count]:
                log.insert_segment(position, length, counts)

        for count in segment_counts:
            build_s = measure(lambda c=count: replay(c), repeat=repeat)
            sb_kb, tl_kb, total_kb = snapshots[count]
            table.add_row([count, sb_kb, tl_kb, total_kb, build_s * _MS])
        tables[shape] = table
    return tables


# ----------------------------------------------------------------------
# Fig. 12 — join time vs cross-segment-join percentage


def fig12_cross_join(
    n_segments: int = 50,
    shape: str = "nested",
    fractions: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    *,
    repeat: int = 3,
) -> Sweep:
    """Fig. 12: LS/LD/STD elapsed join time vs % of cross-segment joins.

    Segment count, |A| and |D| held (approximately) fixed while the
    cross-join percentage sweeps.  Times in ms; ``actual_cross_pct`` reports
    the realized percentage for honesty about the approximation.
    """
    sweep = Sweep("target_cross_pct")
    for fraction, config in zip(
        fractions, sweep_configs(n_segments, shape, list(fractions))
    ):
        ld = LazyXMLDatabase(keep_text=False)
        build_join_mix(ld, config)
        stats = JoinStatistics()
        ld.structural_join("a", "d", stats=stats)
        t_ld = measure(lambda: ld.structural_join("a", "d"), repeat=repeat)
        t_std = measure(
            lambda: ld.structural_join("a", "d", algorithm="std"), repeat=repeat
        )

        ls = LazyXMLDatabase(mode="static", keep_text=False)
        build_join_mix(ls, config)
        rng = random.Random(0)

        def ls_query() -> None:
            ls.log.mark_stale(rng)
            ls.prepare_for_query()
            ls.structural_join("a", "d")

        ls.prepare_for_query()  # first finalize so mark_stale has sorted input
        t_ls = measure(ls_query, repeat=repeat)
        sweep.add(
            round(fraction * 100),
            ls_ms=t_ls * _MS,
            ld_ms=t_ld * _MS,
            std_ms=t_std * _MS,
            actual_cross_pct=round(stats.cross_fraction * 100, 1),
            pairs=stats.pairs,
        )
    return sweep


# ----------------------------------------------------------------------
# Fig. 13 — join time vs number of segments over a fixed document


def spine_document(
    depth: int, bushiness: int = 3, *, tags: tuple[str, str, str] = ("t0", "t1", "t2")
) -> str:
    """A document with a ``depth``-long spine of ``tags[0]`` elements.

    Each spine node carries ``bushiness`` leaf children alternating the
    other two tags.  Deep enough for nested chopping at any segment count
    up to ``depth``; the query ``tags[0] // tags[1]`` yields a quadratic
    pair set concentrated on the spine.
    """
    root = Node(tags[0])
    node = root
    for level in range(depth - 1):
        for b in range(bushiness):
            node.child(tags[1 + (b % 2)])
        node = node.child(tags[0])
    for b in range(bushiness):
        node.child(tags[1 + (b % 2)])
    return root.to_xml()


def fig13_segments(
    segment_counts: tuple[int, ...] = (10, 20, 40, 80, 160),
    shapes: tuple[str, ...] = ("balanced", "nested"),
    *,
    depth: int = 200,
    bushiness: int = 3,
    repeat: int = 3,
) -> dict[str, Sweep]:
    """Fig. 13: LD vs STD join time over one document, varying #segments.

    The same spine document is chopped into each segment count; STD over the
    unchopped labels is flat, LD grows with the segment count — reproducing
    the crossover the paper reports for high segment counts.
    """
    text = spine_document(depth, bushiness)
    sweeps: dict[str, Sweep] = {}
    for shape in shapes:
        sweep = Sweep("segments")
        for count in segment_counts:
            db, _ = chop_text(text, count, shape)
            stats = JoinStatistics()
            db.structural_join("t0", "t1", stats=stats)
            t_ld = measure(lambda: db.structural_join("t0", "t1"), repeat=repeat)
            t_std = measure(
                lambda: db.structural_join("t0", "t1", algorithm="std"),
                repeat=repeat,
            )
            sweep.add(
                count,
                ld_ms=t_ld * _MS,
                std_ms=t_std * _MS,
                cross_pct=round(stats.cross_fraction * 100, 1),
            )
        sweeps[shape] = sweep
    return sweeps


# ----------------------------------------------------------------------
# Fig. 14 + 15 — XMark queries



def _xmark_chop_ops(text: str, n_segments: int):
    """Chop an XMark document at person-*child* subtree boundaries.

    The paper modified its XMark dataset to raise the cross-segment join
    percentage to 20–30%; splitting below ``person`` (profile / watches /
    address subtrees become their own segments) does the same: Q4/Q5
    (person//watch, person//interest) become cross-segment while Q2/Q3 stay
    in-segment.
    """
    from repro.workloads.chopper import chop
    from repro.xml.parser import parse

    document = parse(text)
    candidates = [
        e
        for e in document.elements
        if e.tag in ("profile", "watches", "address") and e.children
    ]
    take = min(n_segments - 1, len(candidates))
    step = max(1, len(candidates) // take) if take else 1
    roots = [document.root] + candidates[::step][:take]
    return chop(document, roots)


def fig14_15_xmark(
    scale: float = 0.05,
    n_segments: int = 100,
    *,
    seed: int = 7,
    repeat: int = 3,
) -> tuple[Table, Table]:
    """Fig. 14 (query cardinalities) and Fig. 15 (LS/LD/STD query times).

    XMark-like dataset chopped into ``n_segments`` balanced segments, the
    paper's setup.  Returns ``(cardinality_table, time_table)``.
    """
    text = generate_site(XMarkConfig(scale=scale, seed=seed)).to_xml()
    ops = _xmark_chop_ops(text, n_segments)
    ld = LazyXMLDatabase(keep_text=False)
    apply_chop(ld, ops)
    ls = LazyXMLDatabase(mode="static", keep_text=False)
    apply_chop(ls, ops)
    ls.prepare_for_query()

    cardinalities = Table(
        "Fig 14 — XMark queries", ["query", "xpath", "cardinality", "cross_pct"]
    )
    times = Table(
        "Fig 15 — XMark join times", ["query", "ls_ms", "ld_ms", "std_ms"]
    )
    rng = random.Random(0)
    for qid, tag_a, tag_d in XMARK_QUERIES:
        stats = JoinStatistics()
        pairs = ld.structural_join(tag_a, tag_d, stats=stats)
        cardinalities.add_row(
            [qid, f"{tag_a}//{tag_d}", len(pairs), round(stats.cross_fraction * 100, 1)]
        )
        t_ld = measure(lambda: ld.structural_join(tag_a, tag_d), repeat=repeat)
        t_std = measure(
            lambda: ld.structural_join(tag_a, tag_d, algorithm="std"), repeat=repeat
        )

        def ls_query() -> None:
            ls.log.mark_stale(rng)
            ls.prepare_for_query()
            ls.structural_join(tag_a, tag_d)

        t_ls = measure(ls_query, repeat=repeat)
        times.add_row([qid, t_ls * _MS, t_ld * _MS, t_std * _MS])
    return cardinalities, times


# ----------------------------------------------------------------------
# Fig. 16 — segment insertion: lazy vs traditional relabeling


def fig16_insert(
    doc_segment_counts: tuple[int, ...] = (20, 40, 80, 160),
    *,
    elements_per_segment: int = 25,
    n_tags: int = 8,
    repeat: int = 3,
) -> Sweep:
    """Fig. 16: time to insert one mid-document segment vs document size.

    Documents grow by segment count (so total elements = count × per-seg);
    the insertion point sits mid-document, making roughly half the elements
    shift — the paper's average case.  Compares LD against the traditional
    interval-relabeling index.
    """
    sweep = Sweep("doc_elements")
    tags = tag_pool(n_tags)
    probe = generate_uniform_fragment(elements_per_segment, tags)
    for count in doc_segment_counts:
        db = LazyXMLDatabase(keep_text=False)
        sids = build_uniform_segments(
            db,
            count,
            "flat",
            elements_per_segment=elements_per_segment,
            n_tags=n_tags,
        )
        mid_sid = sids[len(sids) // 2]

        def lazy_insert() -> None:
            insert_under(db, mid_sid, probe, tags[0])

        t_lazy = measure(lazy_insert, repeat=repeat)

        trad = IntervalLabelingIndex()
        fragment = generate_uniform_fragment(elements_per_segment, tags)
        whole = (
            "<root>" + fragment * count + "</root>"
        )
        trad.insert_fragment(whole, 0)
        mid_position = len("<root>") + (count // 2) * len(fragment) + len(tags[0]) + 2

        def traditional_insert() -> None:
            trad.insert_fragment(probe, mid_position)

        t_trad = measure(traditional_insert, repeat=repeat)
        sweep.add(
            count * elements_per_segment,
            lazy_ms=t_lazy * _MS,
            traditional_ms=t_trad * _MS,
        )
    return sweep


# ----------------------------------------------------------------------
# Fig. 17 — per-element insertion time: LD/LS vs PRIME


def _prime_per_element(
    n_elements: int, *, group_size: int, base_nodes: int, repeat: int
) -> float:
    """Seconds per element for PRIME insertion mid-document."""
    labeling = PrimeLabeling(group_size=group_size, capacity=base_nodes * 4)
    root = labeling.insert(None)
    for _ in range(base_nodes - 1):
        labeling.insert(root)
    mid = len(labeling) // 2

    def run() -> None:
        for _ in range(n_elements):
            labeling.insert(root, order_index=mid)

    return measure(run, repeat=repeat) / n_elements


def _lazy_per_element(
    db: LazyXMLDatabase,
    mid_sid: int,
    fragment: str,
    root_tag: str,
    n_elements: int,
    repeat: int,
) -> float:
    """Seconds per element for inserting one segment into a lazy database."""

    def run() -> None:
        insert_under(db, mid_sid, fragment, root_tag)

    return measure(run, repeat=repeat) / n_elements


def fig17_element_insert(
    *,
    element_counts: tuple[int, ...] = (10, 20, 40, 80, 160),
    tag_counts: tuple[int, ...] = (2, 4, 8, 16, 32),
    segment_counts: tuple[int, ...] = (25, 50, 100, 200),
    shape: str = "balanced",
    n_segments: int = 100,
    prime_groups: tuple[int, ...] = (10, 50),
    prime_base_nodes: int = 1000,
    repeat: int = 3,
) -> dict[str, Sweep]:
    """Fig. 17(a–c): per-element insertion time for LD, LS and PRIME.

    Returns sweeps keyed ``"elements"``, ``"tags"``, ``"segments"``.
    LD/LS insert one segment and divide by its element count; PRIME inserts
    elements one by one into a pre-populated labeling (its per-element cost
    is what the scheme defines).
    """
    tags = tag_pool(8)
    results: dict[str, Sweep] = {}

    def fresh_pair() -> tuple[LazyXMLDatabase, int, LazyXMLDatabase, int]:
        ld = LazyXMLDatabase(keep_text=False)
        ld_sids = build_uniform_segments(ld, n_segments, shape, n_tags=8)
        ls = LazyXMLDatabase(mode="static", keep_text=False)
        ls_sids = build_uniform_segments(ls, n_segments, shape, n_tags=8)
        return ld, ld_sids[len(ld_sids) // 2], ls, ls_sids[len(ls_sids) // 2]

    # (a) sweep elements per inserted segment
    sweep_a = Sweep("elements_per_segment")
    ld, ld_mid, ls, ls_mid = fresh_pair()
    for n in element_counts:
        fragment = generate_uniform_fragment(n, tags)
        values = {
            "ld_us": _lazy_per_element(ld, ld_mid, fragment, tags[0], n, repeat) * 1e6,
            "ls_us": _lazy_per_element(ls, ls_mid, fragment, tags[0], n, repeat) * 1e6,
        }
        for k in prime_groups:
            values[f"prime_k{k}_us"] = (
                _prime_per_element(
                    n, group_size=k, base_nodes=prime_base_nodes, repeat=repeat
                )
                * 1e6
            )
        sweep_a.add(n, **values)
    results["elements"] = sweep_a

    # (b) sweep distinct tag names per inserted segment (element count fixed)
    sweep_b = Sweep("distinct_tags")
    fixed_elements = max(tag_counts) * 2
    ld, ld_mid, ls, ls_mid = fresh_pair()
    prime_values = {
        f"prime_k{k}_us": _prime_per_element(
            fixed_elements, group_size=k, base_nodes=prime_base_nodes, repeat=repeat
        )
        * 1e6
        for k in prime_groups
    }
    for m in tag_counts:
        fragment = generate_uniform_fragment(fixed_elements, tag_pool(m, prefix="u"))
        values = {
            "ld_us": _lazy_per_element(
                ld, ld_mid, fragment, f"u0", fixed_elements, repeat
            )
            * 1e6,
            "ls_us": _lazy_per_element(
                ls, ls_mid, fragment, f"u0", fixed_elements, repeat
            )
            * 1e6,
        }
        values.update(prime_values)  # PRIME is tag-agnostic: flat line
        sweep_b.add(m, **values)
    results["tags"] = sweep_b

    # (c) sweep the number of segments already in the database
    sweep_c = Sweep("segments")
    probe_elements = 40
    probe = generate_uniform_fragment(probe_elements, tags)
    for count in segment_counts:
        ld = LazyXMLDatabase(keep_text=False)
        ld_sids = build_uniform_segments(ld, count, shape, n_tags=8)
        ls = LazyXMLDatabase(mode="static", keep_text=False)
        ls_sids = build_uniform_segments(ls, count, shape, n_tags=8)
        sweep_c.add(
            count,
            ld_us=_lazy_per_element(
                ld, ld_sids[len(ld_sids) // 2], probe, tags[0], probe_elements, repeat
            )
            * 1e6,
            ls_us=_lazy_per_element(
                ls, ls_sids[len(ls_sids) // 2], probe, tags[0], probe_elements, repeat
            )
            * 1e6,
        )
    results["segments"] = sweep_c
    return results


# ----------------------------------------------------------------------
# Ablations (DESIGN.md E9/E10)


def ablation_push_optimizations(
    n_segments: int = 50,
    shape: str = "nested",
    *,
    fraction: float = 0.8,
    repeat: int = 3,
) -> Table:
    """E9: effect of the two Fig. 9 stack optimizations on join time."""
    config = sweep_configs(n_segments, shape, [fraction])[0]
    db = LazyXMLDatabase(keep_text=False)
    build_join_mix(db, config)
    table = Table(
        "Ablation — Lazy-Join stack optimizations",
        ["optimize_push", "trim_top", "join_ms", "elements_pushed"],
    )
    for optimize_push in (True, False):
        for trim_top in (True, False):
            stats = JoinStatistics()
            db.structural_join(
                "a", "d", optimize_push=optimize_push, trim_top=trim_top, stats=stats
            )
            elapsed = measure(
                lambda: db.structural_join(
                    "a", "d", optimize_push=optimize_push, trim_top=trim_top
                ),
                repeat=repeat,
            )
            table.add_row(
                [optimize_push, trim_top, elapsed * _MS, stats.elements_pushed]
            )
    return table


def ablation_branch_strategy(
    n_segments: int = 120,
    *,
    fraction: float = 1.0,
    repeat: int = 3,
) -> Table:
    """E10: stored tag-list paths vs recomputing branch positions.

    Deep nested chains make the difference visible: ``walk`` pays O(depth)
    per stack frame, the stored-path strategy O(log N).
    """
    config = sweep_configs(n_segments, "nested", [fraction])[0]
    db = LazyXMLDatabase(keep_text=False)
    build_join_mix(db, config)
    table = Table(
        "Ablation — branch position strategy", ["strategy", "join_ms"]
    )
    for strategy in ("path", "bisect", "walk"):
        elapsed = measure(
            lambda: db.structural_join("a", "d", branch_strategy=strategy),
            repeat=repeat,
        )
        table.add_row([strategy, elapsed * _MS])
    return table
