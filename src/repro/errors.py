"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch a single class to handle any library failure.  More specific
subclasses separate the three broad failure domains: malformed XML input,
invalid update requests against the super document, and misuse of the index
structures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "XMLSyntaxError",
    "UpdateError",
    "SegmentNotFoundError",
    "InvalidSegmentError",
    "IndexError_",
    "KeyNotFoundError",
    "QueryError",
    "PathSyntaxError",
    "LabelingError",
    "DurabilityError",
    "JournalError",
    "CheckpointError",
    "RecoveryError",
    "ServiceError",
    "QueryCancelled",
    "DeadlineExceeded",
    "ResourceExhausted",
    "Busy",
    "CircuitOpenError",
    "ServiceClosed",
    "ShardError",
    "WorkerLost",
    "ReplicationError",
    "FencedError",
    "ChannelCut",
    "ReplicaDiverged",
    "LaggingReplica",
    "Draining",
    "NetError",
    "ProtocolError",
    "FrameError",
    "FrameTooLarge",
    "FrameCorrupt",
    "Overloaded",
    "ConnectionLost",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class XMLSyntaxError(ReproError):
    """Raised when XML text cannot be tokenized or parsed.

    Carries the character ``offset`` at which the problem was detected so
    callers working with the text-editing model of the paper can point at the
    offending location in the super document.
    """

    def __init__(self, message: str, offset: int | None = None):
        if offset is not None:
            message = f"{message} (at offset {offset})"
        super().__init__(message)
        self.offset = offset


class UpdateError(ReproError):
    """Raised when an insert/remove request against the super document is invalid."""


class SegmentNotFoundError(UpdateError):
    """Raised when a segment id is not present in the SB-tree."""

    def __init__(self, sid: int):
        super().__init__(f"segment {sid} not found in the update log")
        self.sid = sid


class InvalidSegmentError(UpdateError):
    """Raised when a segment's (global position, length) pair is inconsistent.

    Examples: negative length, a position outside the super document, or an
    insertion that would split an existing segment's boundary tags.
    """


class IndexError_(ReproError):
    """Base class for element-index and B+-tree misuse errors.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class KeyNotFoundError(IndexError_):
    """Raised when a key expected to be present in a B+-tree is missing."""

    def __init__(self, key: object):
        super().__init__(f"key not found: {key!r}")
        self.key = key


class QueryError(ReproError):
    """Raised when a structural-join query is malformed or unsupported."""


class PathSyntaxError(QueryError):
    """Raised when a path/twig expression cannot be parsed.

    Unlike the bare :class:`QueryError` it always names the offending
    ``token`` and its character ``position`` in the original expression,
    so callers (CLI, shell, TCP protocol) can point at the exact spot —
    and so "unsupported in this surface, supported in that one" reads as
    a precise diagnostic instead of a generic failure.
    """

    def __init__(
        self,
        message: str,
        *,
        token: str | None = None,
        position: int | None = None,
    ):
        detail = message
        if token is not None:
            detail = f"{detail}: {token!r}"
        if position is not None:
            detail = f"{detail} at position {position}"
        super().__init__(detail)
        self.token = token
        self.position = position


class LabelingError(ReproError):
    """Raised by labeling schemes (interval, prime) on invalid operations."""


class DurabilityError(ReproError):
    """Base class for errors in the durability subsystem (journal/checkpoint)."""


class JournalError(DurabilityError):
    """Raised when the write-ahead journal cannot be written or is unusable.

    A :class:`~repro.durability.database.DurableDatabase` whose journal
    append failed refuses further updates with this error: the in-memory
    state can no longer be proven durable, so the caller must reopen the
    directory (running recovery) to continue.
    """


class CheckpointError(DurabilityError):
    """Raised when a checkpoint file is missing required structure or fails
    its embedded checksum."""


class RecoveryError(DurabilityError):
    """Raised when crash recovery cannot reconstruct a consistent database.

    A torn *final* journal record is not a recovery error (it is the
    expected signature of a crash mid-append and is silently discarded);
    this error covers genuinely unrecoverable states such as a corrupt
    checkpoint or a journal record whose operation type is unknown.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the concurrent access layer
    (:mod:`repro.service`)."""


class QueryCancelled(ServiceError):
    """Base class for cooperative query aborts (deadline / resource limits).

    Raised only at cancellation checkpoints inside read-only query code, so
    an aborted query never leaves partial mutations behind — the next query
    against the same snapshot succeeds.
    """


class DeadlineExceeded(QueryCancelled):
    """Raised when a query runs past its :class:`QueryContext` deadline."""


class ResourceExhausted(QueryCancelled):
    """Raised when a query exceeds a resource budget (result rows, stack
    depth) configured on its :class:`QueryContext`."""


class Busy(ServiceError):
    """Transient admission-control rejection: the request class is at its
    concurrency/queue limit.  Safe to retry after backing off
    (see :func:`repro.service.admission.retry_with_backoff`)."""


class CircuitOpenError(ServiceError):
    """Raised when an operation is refused because its circuit breaker is
    open (repeated recent failures); retry after the reset timeout."""


class ServiceClosed(ServiceError):
    """Raised when a request reaches a service that has been shut down."""


class ShardError(ServiceError):
    """Base class for errors raised by the sharded execution layer
    (:mod:`repro.shard`)."""


class WorkerLost(ShardError):
    """Raised when a shard worker process dies (or its pipe breaks) while a
    query is in flight.  The query fails fast with this typed error; the
    executor marks the worker dead and later queries run degraded
    (in-process on the coordinator's authoritative shard) until respawn."""


class ReplicationError(ServiceError):
    """Base class for errors raised by the replication subsystem
    (:mod:`repro.replication`)."""


class FencedError(ReplicationError):
    """Raised when a primary's append carries a stale term: another node
    was promoted with a higher fencing term, so the write must be refused.

    A primary that receives this error transitions to the *fenced* state
    and refuses all further appends with the same error, before touching
    its journal — the acknowledged-but-unreplicated writes it already holds
    are reported when it rejoins as a follower (:class:`~repro.replication
    .cluster.RejoinReport`)."""


class ChannelCut(ReplicationError):
    """Raised when a replication channel is cut (simulated partition or a
    closed peer); the record was not delivered.  The primary keeps the
    record durable in its own journal and the follower catches up from the
    journal tail on reconnect."""


class ReplicaDiverged(ReplicationError):
    """Raised when a follower's committed history conflicts with the
    current primary's at a matching sequence number and the divergence
    cannot be resolved by a reported rejoin (e.g. mid-history tampering)."""


class LaggingReplica(ReplicationError):
    """Raised when a read demands a minimum replicated sequence number a
    follower has not applied yet and cannot catch up to (primary
    unreachable).  Safe to retry after the follower reconnects."""


class Draining(ServiceError):
    """Raised when a request reaches a service that is draining for
    shutdown: in-flight work is being finished or aborted, no new work is
    accepted.  Unlike :class:`Busy` this is not transient on this endpoint
    — clients should reconnect elsewhere (or wait for a restart)."""


class NetError(ServiceError):
    """Base class for errors raised by the network front end
    (:mod:`repro.net`)."""


class ProtocolError(NetError):
    """Raised on a wire-protocol violation that is not a framing defect:
    unsupported protocol version, a message type that is invalid in the
    current connection state (e.g. a request before the handshake), or a
    semantically malformed request payload."""


class FrameError(ProtocolError):
    """Base class for framing defects (the byte stream cannot be sliced
    into frames).  Framing errors are fatal to the *connection* — once the
    stream loses sync there is no way to find the next frame boundary —
    but never to the server process."""


class FrameTooLarge(FrameError):
    """Raised when a frame header declares a payload longer than the
    configured cap; the frame is rejected before any payload is buffered,
    so an adversarial length field cannot balloon server memory."""


class FrameCorrupt(FrameError):
    """Raised when frame bytes fail validation: bad magic, or a payload
    whose CRC32 does not match the header checksum."""


class Overloaded(NetError):
    """Typed load-shed response: the server is at a connection or
    in-flight cap and refuses the request *immediately* instead of
    queueing it unboundedly.  Safe to retry with backoff (see
    :func:`repro.service.retry.retry_with_backoff`)."""


class ConnectionLost(NetError):
    """Raised by the client library when the transport drops with
    requests still in flight; each unanswered request fails with this
    error.  Whether a lost write actually committed is unknown to the
    client — exactly-once is the caller's concern (idempotent ops are
    safe to retry)."""
