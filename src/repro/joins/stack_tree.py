"""Stack-Tree-Desc — the Al-Khalifa et al. structural join (reference [1]).

This is both the paper's STD comparator and the subroutine Lazy-Join uses
for in-segment joins (on local positions, which is sound because local
labels are immutable).

The algorithm merges two element lists sorted by start position, keeping a
stack of nested candidate ancestors.  Intervals come from a tree, so two
intervals never partially overlap: once ancestors whose span ended before
the current descendant are popped, *every* remaining stack entry contains
the descendant — results stream out sorted by descendant position, matching
the variant the paper extends.

Works over any objects exposing ``start``, ``end`` (end-exclusive) and
``level`` attributes, e.g. :class:`~repro.core.element_index.ElementRecord`.

:func:`stack_tree_desc` is a dispatcher over the column-at-a-time kernels
of :mod:`repro.joins.kernels` (selected by ``REPRO_JOIN_KERNEL`` or the
``kernel`` argument); the original frame-walking loop is kept verbatim as
the ``legacy`` backend and the parity-testing reference.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence
from operator import attrgetter

from repro.errors import QueryError
from repro.joins import kernels
from repro.obs.metrics import METRICS

_start_of = attrgetter("start")

__all__ = ["stack_tree_desc", "stack_tree_anc", "AXIS_DESCENDANT", "AXIS_CHILD"]

# Query-path instruments, folded in once per call (see repro.obs.metrics).
# Covers both standalone STD runs and Lazy-Join's in-segment subjoins.
_M_CALLS = METRICS.counter(
    "join.stacktree.calls", unit="joins", site="stack_tree_desc/anc"
)
_M_PAIRS = METRICS.counter(
    "join.stacktree.pairs", unit="pairs", site="stack_tree_desc/anc"
)

AXIS_DESCENDANT = "descendant"
AXIS_CHILD = "child"
_AXES = (AXIS_DESCENDANT, AXIS_CHILD)


def stack_tree_desc(
    ancestors: Sequence,
    descendants: Sequence,
    axis: str = AXIS_DESCENDANT,
    *,
    context=None,
    a_starts=None,
    a_ends=None,
    d_starts=None,
    kernel: str | None = None,
    backend: str | None = None,
) -> list[tuple]:
    """Join two start-sorted element lists on containment.

    Returns ``(ancestor, descendant)`` pairs where the ancestor's span
    strictly contains the descendant's, ordered by descendant position
    (ties/nesting: inner ancestors after outer, i.e. ascending ancestor
    start).  ``axis="child"`` additionally requires
    ``descendant.level == ancestor.level + 1``.

    ``context`` is an optional
    :class:`~repro.service.context.QueryContext`: the descendant loop (a
    run of descendants, in the column kernels) is a cooperative
    cancellation checkpoint, emitted pairs are charged against the row
    budget and stack pushes against the depth budget.  The join is
    read-only, so an abort leaves no trace.

    Self-joins are safe: an element never pairs with itself because
    containment is strict.

    Descendant runs that cannot produce pairs are *galloped* over: with an
    empty stack, no pair is possible until the next unpushed ancestor has
    started, so one bisect over the start-sorted descendants jumps the
    whole run (and an empty stack with the ancestors exhausted ends the
    merge outright).  Emission order is unchanged — skipped descendants
    emitted nothing in the plain merge either.

    ``a_starts``/``a_ends``/``d_starts`` are optional precompiled integer
    columns parallel to the record sequences (the read-path cache's
    ``array('q')`` layouts); omitted, the kernels derive them.  ``kernel``
    pins a :mod:`repro.joins.kernels` backend for this call (the parity
    suite's switch); by default ``REPRO_JOIN_KERNEL`` decides.  ``backend``
    is a pre-resolved ``current_backend()`` value callers in a tight loop
    pass to hoist the per-call environment lookup — the size floor still
    applies, so results stay identical.  Every backend returns the
    identical pair list.
    """
    if axis not in _AXES:
        raise QueryError(f"axis must be one of {_AXES}, got {axis!r}")
    child_only = axis == AXIS_CHILD
    if kernel is None:
        if backend is None:
            backend = kernels.current_backend()
        # Auto mode: full vectorization only pays off past a size floor;
        # the run kernel wins on small inputs (identical results).
        if (
            backend == "numpy"
            and len(ancestors) + len(descendants) < kernels.NUMPY_STD_MIN
        ):
            backend = "python"
    else:
        backend = kernels.normalize_backend(kernel)
    if backend == "numpy":
        results = kernels.std_pairs_numpy(
            ancestors, descendants, child_only=child_only, context=context,
            a_starts=a_starts, a_ends=a_ends, d_starts=d_starts,
        )
    elif backend == "python":
        results = kernels.std_pairs_python(
            ancestors, descendants, child_only=child_only, context=context,
            a_starts=a_starts, a_ends=a_ends, d_starts=d_starts,
        )
    else:
        results = _stack_tree_desc_legacy(
            ancestors, descendants, child_only, context
        )
    if METRICS.enabled:
        _M_CALLS.inc()
        _M_PAIRS.inc(len(results))
    return results


def _stack_tree_desc_legacy(
    ancestors: Sequence,
    descendants: Sequence,
    child_only: bool,
    context,
) -> list[tuple]:
    """The original per-descendant frame walk — the parity reference."""
    results: list[tuple] = []
    stack: list = []
    a_index = 0
    a_count = len(ancestors)
    d_index = 0
    d_count = len(descendants)
    while d_index < d_count:
        desc = descendants[d_index]
        if context is not None:
            context.tick()
        if not stack:
            if a_index >= a_count:
                break
            nxt_start = ancestors[a_index].start
            if desc.start <= nxt_start:
                # No ancestor starts strictly before desc (or any earlier
                # descendant in the run): skip ahead past nxt_start.
                d_index = bisect_right(
                    descendants, nxt_start, d_index, d_count, key=_start_of
                )
                continue
        # Push every ancestor starting before this descendant.
        while a_index < a_count and ancestors[a_index].start < desc.start:
            candidate = ancestors[a_index]
            while stack and stack[-1].end <= candidate.start:
                stack.pop()
            stack.append(candidate)
            a_index += 1
        if context is not None:
            context.charge_depth(len(stack))
        # Drop ancestors that ended before this descendant starts.
        while stack and stack[-1].end <= desc.start:
            stack.pop()
        # Everything left on the stack contains desc (no partial overlap in
        # tree-shaped interval sets).
        if child_only:
            # Only the innermost ancestor can be the parent.
            if stack and stack[-1].level + 1 == desc.level:
                results.append((stack[-1], desc))
                if context is not None:
                    context.charge_rows(1)
        else:
            for anc in stack:
                results.append((anc, desc))
            if context is not None:
                context.charge_rows(len(stack))
        d_index += 1
    return results


def stack_tree_anc(
    ancestors: Sequence,
    descendants: Sequence,
    axis: str = AXIS_DESCENDANT,
    *,
    context=None,
) -> list[tuple]:
    """Join two start-sorted element lists, output sorted by *ancestor*.

    The companion algorithm of reference [1]: the same single merge pass as
    :func:`stack_tree_desc`, but pairs cannot be emitted as soon as they are
    found (an outer ancestor precedes its nested descendants in the output
    while its pairs keep accruing), so every stack entry buffers a
    *self-list* of its own pairs and an *inherit-list* of pairs from popped
    inner entries; lists drain to the output when the bottom entry pops.

    Output order: ancestors by document position, each ancestor's pairs by
    descendant position.
    """
    if axis not in _AXES:
        raise QueryError(f"axis must be one of {_AXES}, got {axis!r}")
    child_only = axis == AXIS_CHILD
    results: list[tuple] = []
    # Stack entries: [element, self_list, inherit_list]
    stack: list[list] = []

    def pop() -> None:
        element, self_list, inherit_list = stack.pop()
        merged = self_list + inherit_list
        if stack:
            stack[-1][2].extend(merged)
        else:
            results.extend(merged)

    a_index = 0
    a_count = len(ancestors)
    for desc in descendants:
        if context is not None:
            context.tick()
        while a_index < a_count and ancestors[a_index].start < desc.start:
            candidate = ancestors[a_index]
            while stack and stack[-1][0].end <= candidate.start:
                pop()
            stack.append([candidate, [], []])
            a_index += 1
        if context is not None:
            context.charge_depth(len(stack))
        while stack and stack[-1][0].end <= desc.start:
            pop()
        if child_only:
            if stack and stack[-1][0].level + 1 == desc.level:
                stack[-1][1].append((stack[-1][0], desc))
                if context is not None:
                    context.charge_rows(1)
        else:
            for entry in stack:
                entry[1].append((entry[0], desc))
            if context is not None:
                context.charge_rows(len(stack))
    while stack:
        pop()
    if METRICS.enabled:
        _M_CALLS.inc()
        _M_PAIRS.inc(len(results))
    return results
