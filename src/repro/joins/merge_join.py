"""Containment merge join — the pre-stack baseline (references [7, 14]).

A relational-style merge over two start-sorted element lists, in the spirit
of Zhang et al.'s MPMGJN / Li & Moon's EE-join: for every ancestor
candidate, scan forward over descendants inside its span.  Nested ancestors
re-scan the same descendants, so the worst case is O(|A|·|D|) — exactly the
weakness the stack-based algorithms fixed, which makes this a useful second
baseline and, being simple, a correctness oracle for the others.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence

from repro.errors import QueryError
from repro.joins.stack_tree import AXIS_CHILD, AXIS_DESCENDANT, _AXES

__all__ = ["merge_containment_join", "naive_containment_join"]


def merge_containment_join(
    ancestors: Sequence,
    descendants: Sequence,
    axis: str = AXIS_DESCENDANT,
) -> list[tuple]:
    """Join start-sorted lists on strict containment, ordered by ancestor.

    For each ancestor, binary-search the first descendant starting inside
    its span and scan until the span ends.  ``axis="child"`` keeps only
    pairs with ``descendant.level == ancestor.level + 1``.
    """
    if axis not in _AXES:
        raise QueryError(f"axis must be one of {_AXES}, got {axis!r}")
    child_only = axis == AXIS_CHILD
    starts = [d.start for d in descendants]
    results: list[tuple] = []
    for anc in ancestors:
        idx = bisect_right(starts, anc.start)
        while idx < len(descendants) and descendants[idx].start < anc.end:
            desc = descendants[idx]
            if desc.end <= anc.end and (
                not child_only or desc.level == anc.level + 1
            ):
                results.append((anc, desc))
            idx += 1
    return results


def naive_containment_join(
    ancestors: Sequence,
    descendants: Sequence,
    axis: str = AXIS_DESCENDANT,
) -> list[tuple]:
    """All-pairs reference implementation (test oracle, O(|A|·|D|) always)."""
    if axis not in _AXES:
        raise QueryError(f"axis must be one of {_AXES}, got {axis!r}")
    child_only = axis == AXIS_CHILD
    results: list[tuple] = []
    for anc in ancestors:
        for desc in descendants:
            if anc.start < desc.start and desc.end <= anc.end:
                if not child_only or desc.level == anc.level + 1:
                    results.append((anc, desc))
    return results
