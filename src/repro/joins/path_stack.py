"""PathStack — holistic linear path matching (Bruno, Koudas & Srivastava).

The paper cites the holistic twig-join line of work (reference [2]) as the
state of the art it composes with; this module implements its linear-path
core, PathStack, as an alternative executor for the same path expressions
:mod:`repro.core.query` evaluates with pipelined binary joins.

PathStack scans one sorted element stream per path step, maintaining one
stack per step; each pushed entry records the height of the previous step's
stack, so every root-to-leaf chain of the path is encoded compactly and
emitted exactly once when a leaf-step element is pushed.  Unlike the
binary-join pipeline it never materializes intermediate step results — the
"holistic" property.

Elements are any objects with ``start``, ``end`` (end-exclusive) and
``level``; chains are emitted as tuples, one element per step.  Child axes
are enforced during solution expansion via the ``level`` fields (the
standard extension of the descendant-only textbook algorithm).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import QueryError
from repro.joins.stack_tree import AXIS_CHILD, AXIS_DESCENDANT

__all__ = ["path_stack"]

_AXES = (AXIS_DESCENDANT, AXIS_CHILD)


class _Entry:
    __slots__ = ("element", "parent_height")

    def __init__(self, element, parent_height: int):
        self.element = element
        self.parent_height = parent_height


def path_stack(
    streams: Sequence[Sequence],
    axes: Sequence[str],
) -> list[tuple]:
    """Match a linear path against per-step element streams.

    ``streams[i]`` holds step *i*'s elements sorted by ``start``;
    ``axes[i]`` (for ``i >= 1``) is the axis connecting step *i* to step
    ``i-1``.  ``axes[0]`` is ignored (conventionally ``"descendant"``).

    Returns every match as a tuple of one element per step, ordered by the
    leaf element's position.
    """
    if len(axes) != len(streams):
        raise QueryError(
            f"need one axis per step: {len(streams)} streams, {len(axes)} axes"
        )
    for axis in axes:
        if axis not in _AXES:
            raise QueryError(f"axis must be one of {_AXES}, got {axis!r}")
    n_steps = len(streams)
    if n_steps == 0:
        return []
    if n_steps == 1:
        return [(element,) for element in streams[0]]

    positions = [0] * n_steps
    stacks: list[list[_Entry]] = [[] for _ in range(n_steps)]
    results: list[tuple] = []

    def next_element(step: int):
        if positions[step] < len(streams[step]):
            return streams[step][positions[step]]
        return None

    while True:
        # Pick the step whose next element starts first.
        q_min, q_element = -1, None
        for step in range(n_steps):
            candidate = next_element(step)
            if candidate is not None and (
                q_element is None or candidate.start < q_element.start
            ):
                q_min, q_element = step, candidate
        if q_element is None:
            break
        # Clean every stack of entries that ended before this element.
        for stack in stacks:
            while stack and stack[-1].element.end <= q_element.start:
                stack.pop()
        positions[q_min] += 1
        if q_min > 0 and not stacks[q_min - 1]:
            continue  # no live ancestor chain for this element
        parent_height = len(stacks[q_min - 1]) - 1 if q_min > 0 else -1
        stacks[q_min].append(_Entry(q_element, parent_height))
        if q_min == n_steps - 1:
            _expand(stacks, axes, stacks[q_min][-1], n_steps - 1, (), results)
            stacks[q_min].pop()  # leaf entries never become ancestors
    return results


def _expand(
    stacks: list[list[_Entry]],
    axes: Sequence[str],
    entry: _Entry,
    step: int,
    suffix: tuple,
    results: list[tuple],
) -> None:
    """Enumerate all chains ending at ``entry`` (recursing toward step 0)."""
    chain_suffix = (entry.element,) + suffix
    if step == 0:
        results.append(chain_suffix)
        return
    child_axis = axes[step] == AXIS_CHILD
    for index in range(entry.parent_height + 1):
        ancestor = stacks[step - 1][index]
        if ancestor.element.start >= entry.element.start:
            # Same element arriving via two streams (repeated tag in the
            # path, e.g. a//a): containment must stay strict.
            continue
        if child_axis and ancestor.element.level + 1 != entry.element.level:
            continue
        _expand(stacks, axes, ancestor, step - 1, chain_suffix, results)
