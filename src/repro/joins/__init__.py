"""Structural join algorithms on interval labels.

- :func:`~repro.joins.stack_tree.stack_tree_desc` — Stack-Tree-Desc, the STD
  baseline and Lazy-Join's in-segment subroutine;
- :func:`~repro.joins.merge_join.merge_containment_join` — the older
  merge-style baseline;
- :func:`~repro.joins.merge_join.naive_containment_join` — all-pairs oracle.
"""

from repro.joins.merge_join import merge_containment_join, naive_containment_join
from repro.joins.path_stack import path_stack
from repro.joins.stack_tree import (
    AXIS_CHILD,
    AXIS_DESCENDANT,
    stack_tree_anc,
    stack_tree_desc,
)

__all__ = [
    "stack_tree_desc",
    "stack_tree_anc",
    "merge_containment_join",
    "path_stack",
    "naive_containment_join",
    "AXIS_DESCENDANT",
    "AXIS_CHILD",
]
