"""Column-at-a-time join kernels: the vectorized inner loops of the joins.

The compiled read path (:mod:`repro.core.readpath`) already freezes each
segment's element lists into flat, start-sorted ``array('q')`` columns.
The original join loops nevertheless walked Python frames per element:
Stack-Tree-Desc touched every descendant individually, and the
cross-segment cascade scanned candidate ends one index at a time.  This
module provides the same computations as *whole-run* kernels:

- :func:`std_pairs_python` — Stack-Tree-Desc where the unit of work is a
  *run* of consecutive descendants sharing one ancestor stack.  The run's
  extent is found with two bisects over the start column (the next
  ancestor push and the top-of-stack expiry are the only stack events),
  and the run's pairs are emitted with a single C-level comprehension
  instead of a per-descendant interpreter loop.
- :func:`std_pairs_numpy` — the same join as pure column arithmetic: for
  a laminar (tree-shaped) interval family, ancestor ``a`` joins exactly
  the contiguous descendant range ``a.start < d.start < a.end``, so two
  ``searchsorted`` calls produce every per-ancestor range, ``repeat`` /
  ``cumsum`` expand them to index pairs, and one ``lexsort`` restores the
  (descendant, ancestor-start) emission order of the frame walk.
- :func:`select_open_python` / :func:`select_open_numpy` — the Step 3
  cross-segment candidate scan (``ends[i] > branch`` over a bisected
  prefix), as one comprehension over zipped column slices or one numpy
  compare + take.

**Parity contract.** Every kernel consumes start-sorted element sequences
from a tree labeling: intervals are laminar (no partial overlap), starts
are unique within one list, and ``end > start``.  On that domain each
kernel returns the byte-identical pair list — same pairs, same order —
as the legacy frame-walking loop, which `tests/test_join_kernels.py`
asserts property-style across adversarial layouts.  ``JoinStatistics``
is unaffected: the kernels replace only emission loops, never the
counters' control flow.

**Backend selection.** ``REPRO_JOIN_KERNEL`` picks the process default:
``python`` (default), ``numpy`` (vectorized, requires numpy), or
``legacy`` (the original loops, kept as the parity reference).  numpy is
strictly optional — requesting it without numpy installed degrades
silently to ``python``, as does an unrecognized value: a typo may change
which identical-result kernel runs, never the results.  Budget
*enforcement points* are backend-dependent (a run or a whole kernel call
is one cancellation checkpoint instead of one descendant), but charged
totals and completed results are identical.
"""

from __future__ import annotations

import os
from bisect import bisect_left, bisect_right
from contextlib import contextmanager
from itertools import chain, repeat

from repro.errors import QueryError

__all__ = [
    "KERNEL_ENV",
    "BACKENDS",
    "COMPILE_ENV",
    "COMPILE_BACKENDS",
    "current_backend",
    "current_compile_backend",
    "numpy_available",
    "normalize_backend",
    "normalize_compile_backend",
    "set_backend",
    "use_backend",
    "set_compile_backend",
    "use_compile_backend",
    "std_pairs_python",
    "std_pairs_numpy",
    "select_open_python",
    "select_open_numpy",
    "open_selector",
    "push_kept_python",
    "push_kept_numpy",
    "push_selector",
]

#: Environment variable naming the default kernel backend.
KERNEL_ENV = "REPRO_JOIN_KERNEL"

#: Recognized backend names, in "most conservative first" order.
BACKENDS = ("legacy", "python", "numpy")

#: Environment variable naming the default *compile* backend — the
#: column-builder side of the read path (whole-tag bulk extraction and
#: the push-list cursor merge), as opposed to the merge kernels above.
COMPILE_ENV = "REPRO_COMPILE_BACKEND"

#: Recognized compile backends.  There is no ``legacy`` here: the
#: record-at-a-time reference is ``ElementIndex.segment_columns`` itself,
#: which the parity suite compares both backends against.
COMPILE_BACKENDS = ("python", "numpy")

_np = None
_np_checked = False


def _numpy():
    """The numpy module, or ``None`` — checked once, never required."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy  # noqa: F401 — optional accelerator

            _np = numpy
        except Exception:  # pragma: no cover - environment-dependent
            _np = None
    return _np


def numpy_available() -> bool:
    """Whether the optional numpy backend can actually run."""
    return _numpy() is not None


def normalize_backend(name: str) -> str:
    """Validate an explicitly requested backend name (typed error)."""
    if name not in BACKENDS:
        raise QueryError(
            f"join kernel must be one of {BACKENDS}, got {name!r}"
        )
    return name


_forced: str | None = None


def current_backend() -> str:
    """The active backend: override, else ``REPRO_JOIN_KERNEL``, else python.

    ``numpy`` without numpy installed and unrecognized environment values
    both degrade to ``python`` — results never depend on the selection.
    """
    name = _forced
    if name is None:
        name = os.environ.get(KERNEL_ENV, "python")
    if name not in BACKENDS:
        name = "python"
    if name == "numpy" and not numpy_available():
        return "python"
    return name


def set_backend(name: str | None) -> None:
    """Force a backend process-wide (``None`` restores env resolution)."""
    global _forced
    _forced = None if name is None else normalize_backend(name)


@contextmanager
def use_backend(name: str | None):
    """Scoped :func:`set_backend` — the parity tests' switch."""
    global _forced
    previous = _forced
    set_backend(name)
    try:
        yield
    finally:
        _forced = previous


# ----------------------------------------------------------------------
# compile-backend selection (mirrors the join-kernel switch above)


def normalize_compile_backend(name: str) -> str:
    """Validate an explicitly requested compile backend name (typed error)."""
    if name not in COMPILE_BACKENDS:
        raise QueryError(
            f"compile backend must be one of {COMPILE_BACKENDS}, got {name!r}"
        )
    return name


_forced_compile: str | None = None


def current_compile_backend() -> str:
    """The active compile backend: override, else ``REPRO_COMPILE_BACKEND``.

    Exactly the join-kernel contract: ``numpy`` without numpy installed
    and unrecognized environment values both degrade silently to
    ``python`` — column contents never depend on the selection.
    """
    name = _forced_compile
    if name is None:
        name = os.environ.get(COMPILE_ENV, "python")
    if name not in COMPILE_BACKENDS:
        name = "python"
    if name == "numpy" and not numpy_available():
        return "python"
    return name


def set_compile_backend(name: str | None) -> None:
    """Force a compile backend process-wide (``None`` restores env)."""
    global _forced_compile
    _forced_compile = (
        None if name is None else normalize_compile_backend(name)
    )


@contextmanager
def use_compile_backend(name: str | None):
    """Scoped :func:`set_compile_backend` — the parity tests' switch."""
    global _forced_compile
    previous = _forced_compile
    set_compile_backend(name)
    try:
        yield
    finally:
        _forced_compile = previous


# ----------------------------------------------------------------------
# Stack-Tree-Desc kernels


def _column(values, records, attr):
    """An indexable int column: the caller's precompiled one, or derived."""
    if values is not None:
        return values
    return [getattr(record, attr) for record in records]


def std_pairs_python(
    ancestors,
    descendants,
    *,
    child_only: bool = False,
    context=None,
    a_starts=None,
    a_ends=None,
    d_starts=None,
) -> list[tuple]:
    """Run-at-a-time Stack-Tree-Desc over start-sorted laminar lists.

    Between two stack events — the next ancestor push (first descendant
    starting strictly after the next unpushed ancestor) and the top
    frame's expiry (first descendant starting at or after the top's end,
    the minimal end on a nested stack) — every descendant sees the same
    stack, so its extent is two bisects and its pairs one comprehension.
    Column arguments are optional precompiled ``array('q')`` columns;
    omitted, they are derived from the records.
    """
    n_a = len(ancestors)
    n_d = len(descendants)
    if not n_a or not n_d:
        return []
    a_starts = _column(a_starts, ancestors, "start")
    a_ends = _column(a_ends, ancestors, "end")
    d_starts = _column(d_starts, descendants, "start")
    # Record materialization is deferred until the merge proves it will
    # emit: a push (descendant axis) or a survived stack (child axis)
    # implies at least one record access, so lazy compiled columns (the
    # read-path cache's ``CompiledElements``) stay column-only through
    # pure counting scans.  ``getattr`` falls through to the argument
    # itself for plain record sequences.
    a_recs = None
    d_recs = None
    results: list[tuple] = []
    stack_recs: list = []
    stack_ends: list[int] = []
    ai = 0
    di = 0
    while di < n_d:
        if context is not None:
            context.tick()
        ds = d_starts[di]
        if not stack_recs:
            if ai >= n_a:
                break
            nxt = a_starts[ai]
            if ds <= nxt:
                # No pair is possible before the next ancestor starts:
                # gallop the whole descendant run with one bisect.
                di = bisect_right(d_starts, nxt, di, n_d)
                continue
        # Push every ancestor starting strictly before this descendant.
        while ai < n_a and a_starts[ai] < ds:
            a_end = a_ends[ai]
            if a_end <= ds:
                # Expires before any remaining descendant starts (starts
                # ascend): it can never contain one, so it would only be
                # pushed and immediately expired.  Skip the frame churn —
                # this is what makes disjoint inputs a pure counting scan.
                ai += 1
                continue
            a_start = a_starts[ai]
            while stack_ends and stack_ends[-1] <= a_start:
                stack_ends.pop()
                stack_recs.pop()
            if a_recs is None:
                a_recs = getattr(ancestors, "records", ancestors)
            stack_recs.append(a_recs[ai])
            stack_ends.append(a_end)
            ai += 1
        if context is not None:
            context.charge_depth(len(stack_recs))
        # Expire frames that end at or before this descendant's start.
        while stack_ends and stack_ends[-1] <= ds:
            stack_ends.pop()
            stack_recs.pop()
        if not stack_recs:
            continue
        if d_recs is None:
            d_recs = getattr(descendants, "records", descendants)
        # The run: descendants before the top frame expires (nested stack
        # means the top holds the minimal end) and not past the next
        # ancestor's start (a push happens only for d.start > a.start).
        # Single-descendant runs (alternating shapes) are detected with
        # two comparisons instead of two bisects: descendant ``di`` is
        # always inside the run, so it is alone in it exactly when the
        # next start already crosses one of the run bounds.
        ndi = di + 1
        if ndi >= n_d or d_starts[ndi] >= stack_ends[-1] or (
            ai < n_a and d_starts[ndi] > a_starts[ai]
        ):
            d = d_recs[di]
            if child_only:
                top = stack_recs[-1]
                if top.level + 1 == d.level:
                    results.append((top, d))
                    if context is not None:
                        context.charge_rows(1)
            elif len(stack_recs) == 1:
                results.append((stack_recs[0], d))
                if context is not None:
                    context.charge_rows(1)
            else:
                results.extend(zip(stack_recs, repeat(d)))
                if context is not None:
                    context.charge_rows(len(stack_recs))
            di = ndi
            continue
        hi = bisect_left(d_starts, stack_ends[-1], ndi, n_d)
        if ai < n_a:
            cap = bisect_right(d_starts, a_starts[ai], ndi, n_d)
            if cap < hi:
                hi = cap
        run = d_recs[di:hi]
        if child_only:
            top = stack_recs[-1]
            want = top.level + 1
            emitted = [(top, d) for d in run if d.level == want]
            if emitted:
                results.extend(emitted)
                if context is not None:
                    context.charge_rows(len(emitted))
        else:
            # Descendant-major emission, ancestors ascending by start
            # (stack order) within each descendant — all C-level: one
            # zip per descendant for deep stacks, one zip total for the
            # common single-ancestor stack.
            if len(stack_recs) == 1:
                results.extend(zip(repeat(stack_recs[0]), run))
            else:
                srecs = stack_recs
                results.extend(
                    chain.from_iterable(
                        [zip(srecs, repeat(d)) for d in run]
                    )
                )
            if context is not None:
                context.charge_rows(len(stack_recs) * len(run))
        di = hi
    return results


def std_pairs_numpy(
    ancestors,
    descendants,
    *,
    child_only: bool = False,
    context=None,
    a_starts=None,
    a_ends=None,
    d_starts=None,
) -> list[tuple]:
    """Fully vectorized Stack-Tree-Desc (descendant axis).

    Laminar intervals make containment a pure range condition per
    ancestor (``a.start < d.start < a.end`` over start-sorted
    descendants), so the whole join is two ``searchsorted`` calls, a
    ``repeat``/``cumsum`` range expansion, and one ``lexsort`` back into
    frame-walk emission order.  The child axis (and a missing numpy)
    delegate to :func:`std_pairs_python` — child emission is bounded by
    one pair per descendant, which the run kernel already handles without
    materializing the full containment relation.
    """
    np = _numpy()
    if np is None or child_only:
        return std_pairs_python(
            ancestors,
            descendants,
            child_only=child_only,
            context=context,
            a_starts=a_starts,
            a_ends=a_ends,
            d_starts=d_starts,
        )
    n_a = len(ancestors)
    n_d = len(descendants)
    if not n_a or not n_d:
        return []
    if context is not None:
        context.tick()
    a_s = _np_column(np, a_starts, ancestors, "start")
    a_e = _np_column(np, a_ends, ancestors, "end")
    d_s = _np_column(np, d_starts, descendants, "start")
    lo = np.searchsorted(d_s, a_s, side="right")
    hi = np.searchsorted(d_s, a_e, side="left")
    counts = hi - lo  # >= 0: start < end makes lo <= hi
    total = int(counts.sum())
    if total == 0:
        return []
    prefix = np.cumsum(counts) - counts
    a_idx = np.repeat(np.arange(n_a, dtype=np.int64), counts)
    d_idx = np.arange(total, dtype=np.int64) - np.repeat(prefix - lo, counts)
    if context is not None:
        # The frame walk's budgets, charged wholesale: the deepest
        # containment nesting and every emitted row.
        context.charge_depth(int(np.bincount(d_idx, minlength=1).max()))
        context.charge_rows(total)
    order = np.lexsort((a_idx, d_idx))  # descendant-major, ancestor minor
    # Emission is certain here (total > 0): resolve lazy compiled
    # columns to their plain record sequences once, then index tuples.
    a_get = getattr(ancestors, "records", ancestors).__getitem__
    d_get = getattr(descendants, "records", descendants).__getitem__
    return list(
        zip(map(a_get, a_idx[order].tolist()), map(d_get, d_idx[order].tolist()))
    )


def _np_column(np, values, records, attr):
    """A contiguous int64 view/copy of a column for searchsorted."""
    if values is None:
        return np.fromiter(
            (getattr(record, attr) for record in records),
            dtype=np.int64,
            count=len(records),
        )
    try:
        # array('q') (and any 8-byte int buffer): zero-copy view.
        return np.frombuffer(values, dtype=np.int64)
    except (TypeError, ValueError, BufferError):
        return np.asarray(values, dtype=np.int64)


# ----------------------------------------------------------------------
# cross-segment candidate-scan kernels (the Step 3 bisect cascade)


def select_open_python(records, ends, hi: int, branch: int, out: list) -> None:
    """Append ``records[i]`` for ``i < hi`` with ``ends[i] > branch``.

    One C-level column slice plus a zipped comprehension — the caller has
    already bisected ``hi`` (count of starts below the branch point) and
    pre-screened the frame via its prefix-max column.
    """
    out.extend(
        [record for record, end in zip(records, ends[:hi]) if end > branch]
    )


def select_open_numpy(records, ends, hi: int, branch: int, out: list) -> None:
    """numpy variant of :func:`select_open_python` (same contract).

    Below ``_NUMPY_SELECT_MIN`` candidates the array round-trip costs more
    than the zipped comprehension, so short prefixes take the python path
    — the selected records are identical either way.
    """
    np = _numpy()
    if np is None or hi < _NUMPY_SELECT_MIN:
        return select_open_python(records, ends, hi, branch, out)
    try:
        column = np.frombuffer(ends, dtype=np.int64)[:hi]
    except (TypeError, ValueError, BufferError):
        column = np.asarray(ends[:hi], dtype=np.int64)
    matches = np.nonzero(column > branch)[0]
    if matches.size:
        out.extend(map(records.__getitem__, matches.tolist()))


#: Candidate-prefix length below which numpy setup dominates the scan.
_NUMPY_SELECT_MIN = 64

#: Combined input size below which the run kernel beats full
#: vectorization for Stack-Tree-Desc (dispatcher heuristic only —
#: explicitly requested kernels are always honored).
NUMPY_STD_MIN = 64


def open_selector(backend: str | None = None):
    """The candidate-scan kernel for ``backend`` (default: current)."""
    if backend is None:
        backend = current_backend()
    if backend == "numpy" and numpy_available():
        return select_open_numpy
    return select_open_python


# ----------------------------------------------------------------------
# push-list compile kernels (the Section 4.2 optimization-(i) filter)


def push_kept_python(starts, ends, lps) -> list | None:
    """Indices of elements containing at least one child insertion point.

    ``starts``/``ends`` are a segment's start-sorted element columns;
    ``lps`` the (sorted) child lps.  An element survives iff the first lp
    strictly past its start lies inside its span — one O(n + m) cursor
    merge, since starts ascend.  Returns ``None`` when *every* element
    survives (the caller shares its columns outright) — the common case
    for densely chopped documents, decided without building a list copy.
    """
    n_lps = len(lps)
    li = 0
    kept: list[int] = []
    n = len(starts)
    for i, start in enumerate(starts):
        while li < n_lps and lps[li] <= start:
            li += 1
        if li == n_lps:
            # Later elements start even further right: no child lp can
            # fall inside any of their spans either.
            break
        if lps[li] < ends[i]:
            kept.append(i)
    if len(kept) == n:
        return None
    return kept


def push_kept_numpy(starts, ends, lps) -> list | None:
    """Vectorized :func:`push_kept_python` (same contract, same output).

    The cursor merge becomes one ``searchsorted`` over the child lps plus
    one bounds-checked compare.  Below ``_NUMPY_PUSH_MIN`` elements the
    array round-trip costs more than the merge, so short columns take the
    python path — the kept index list is identical either way.
    """
    np = _numpy()
    n = len(starts)
    if np is None or n < _NUMPY_PUSH_MIN:
        return push_kept_python(starts, ends, lps)
    try:
        s = np.frombuffer(starts, dtype=np.int64)
        e = np.frombuffer(ends, dtype=np.int64)
    except (TypeError, ValueError, BufferError):
        s = np.asarray(starts, dtype=np.int64)
        e = np.asarray(ends, dtype=np.int64)
    l_arr = np.asarray(lps, dtype=np.int64)
    idx = np.searchsorted(l_arr, s, side="right")
    in_range = idx < l_arr.size
    sel = np.zeros(n, dtype=bool)
    sel[in_range] = l_arr[idx[in_range]] < e[in_range]
    kept = np.nonzero(sel)[0]
    if kept.size == n:
        return None
    return kept.tolist()


#: Element-column length below which numpy setup dominates the merge.
_NUMPY_PUSH_MIN = 64


def push_selector(backend: str | None = None):
    """The push-filter kernel for ``backend`` (default: current compile)."""
    if backend is None:
        backend = current_compile_backend()
    if backend == "numpy" and numpy_available():
        return push_kept_numpy
    return push_kept_python
