"""Crash recovery: checkpoint load + journal-tail replay.

Recovery reconstructs the database a durable directory describes:

1. load the checkpoint if one exists (verified by its embedded checksum),
   otherwise start from an empty database;
2. scan the journal, silently discarding a torn final record (the
   signature of a crash mid-append);
3. replay every record with ``seq`` greater than the checkpoint's
   ``last_seq`` — older records are leftovers of a crash between the
   checkpoint replace and the journal truncation and must not be
   double-applied;
4. finish with ``check_invariants()``.

Replay uses the same operation dispatcher (:func:`apply_op`) the live
:class:`~repro.durability.database.DurableDatabase` uses, so a replayed
history is bit-identical to the directly applied one (the replay-
equivalence property tests assert exactly this).  A record whose
pre-validation fails during replay corresponds to a live call that raised
before mutating anything; it is skipped, reproducing the live outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.database import LazyXMLDatabase
from repro.core.maintenance import require_repackable
from repro.core.segment import DUMMY_ROOT_SID
from repro.durability import hooks
from repro.durability.checkpoint import read_checkpoint
from repro.durability.wal import JournalScan, read_journal
from repro.errors import (
    InvalidSegmentError,
    RecoveryError,
    ReproError,
)
from repro.xml.parser import parse_fragment

__all__ = [
    "CHECKPOINT_NAME",
    "JOURNAL_NAME",
    "BATCH_KIND",
    "OP_KINDS",
    "RecoveryReport",
    "recover",
    "apply_op",
    "validate_op",
    "validate_batch_ops",
]

CHECKPOINT_NAME = "checkpoint.json"
JOURNAL_NAME = "journal.wal"

#: Operation kinds a journal record may carry as a single record.
OP_KINDS = ("insert", "remove", "remove_segment", "repack", "compact")

#: The batched-record kind: one journal record carrying a list of
#: :data:`OP_KINDS` sub-ops, committed by a single fsync and applied under
#: one version-bump epoch.  Batches never nest.
BATCH_KIND = "batch"


@dataclass
class RecoveryReport:
    """What recovery found and did."""

    directory: str
    checkpoint_found: bool = False
    checkpoint_seq: int = 0  # last_seq folded into the checkpoint (0 = none)
    last_seq: int = 0
    ops_replayed: int = 0
    ops_skipped: int = 0  # records replay rejected (live call raised pre-mutation)
    torn_tail: bool = False
    journal_valid_bytes: int = 0
    skipped_details: list[str] = field(default_factory=list)

    def describe(self) -> str:
        parts = [
            f"checkpoint={'yes' if self.checkpoint_found else 'no'}",
            f"last_seq={self.last_seq}",
            f"replayed={self.ops_replayed}",
        ]
        if self.ops_skipped:
            parts.append(f"skipped={self.ops_skipped}")
        if self.torn_tail:
            parts.append("torn_tail=discarded")
        return ", ".join(parts)


def validate_op(db: LazyXMLDatabase, op: dict) -> None:
    """Raise (without mutating anything) if ``op`` cannot apply to ``db``.

    This runs *before* the journal append in the live write path, so the
    journal only ever records operations that will succeed; replay applies
    the same checks, keeping the two paths in lockstep.
    """
    kind = op.get("op")
    if kind == BATCH_KIND:
        _validate_batch(db, op)
        return
    if kind not in OP_KINDS:
        raise RecoveryError(f"unknown journal operation {kind!r}")
    if kind == "insert":
        fragment = op["fragment"]
        # An omitted position means append (mirrors the insert() API);
        # batch sub-ops rely on this since the append point shifts with
        # every preceding sub-op.
        position = op.get("position")
        if position is None:
            position = db.document_length
        parse_fragment(fragment)
        if not 0 <= position <= db.document_length:
            raise InvalidSegmentError(
                f"insert position {position} outside super document "
                f"[0, {db.document_length}]"
            )
        if op.get("validate") == "full":
            db._validate_splice(fragment, position)
    elif kind == "remove":
        position, length = op["position"], op["length"]
        if length <= 0:
            raise InvalidSegmentError(f"removal length must be positive, got {length}")
        if position < 0 or position + length > db.document_length:
            raise InvalidSegmentError(
                f"removal span [{position}, {position + length}) outside "
                f"super document [0, {db.document_length})"
            )
    elif kind == "remove_segment":
        db.log.node(op["sid"])  # raises SegmentNotFoundError when absent
    elif kind == "repack":
        require_repackable(db, op["sid"])
    elif kind == "compact":
        pass


def _validate_batch(db: LazyXMLDatabase, op: dict) -> None:
    """Pre-journal checks for a batch record.

    Sub-ops apply sequentially, so later bounds depend on earlier effects;
    the checks that *can* run against pre-batch state do (shape, sub-kinds,
    fragment syntax, splice bounds against the simulated document length).
    Checks that need state only the application itself produces (segment
    ids minted mid-batch, repackability after an earlier sub-op) are
    deferred to apply time, where a failing sub-op is deterministically
    skipped — identically live and in replay.
    """
    validate_batch_ops(op.get("ops"), db.document_length)


def validate_batch_ops(ops, doc_len: int) -> None:
    """The batch checks that run against a (simulated) document length.

    Shared by the single-database batch validation above and the sharded
    coordinator (which validates against its virtual super-document
    length), so a malformed batch is rejected *whole* — before any sub-op
    applies — identically at every layer.
    """
    if not isinstance(ops, list) or not ops:
        raise RecoveryError("batch record must carry a non-empty ops list")
    for index, sub in enumerate(ops):
        if not isinstance(sub, dict):
            raise RecoveryError(f"batch op {index} is not an op record")
        sub_kind = sub.get("op")
        if sub_kind not in OP_KINDS:
            # Unknown kinds and nested batches alike: never journaled.
            raise RecoveryError(
                f"batch op {index}: invalid operation {sub_kind!r} "
                f"(must be one of {OP_KINDS})"
            )
        if sub_kind == "insert":
            fragment = sub.get("fragment")
            if not isinstance(fragment, str):
                raise RecoveryError(
                    f"batch op {index}: insert needs a string 'fragment'"
                )
            position = sub.get("position")
            if position is None:
                position = doc_len  # omitted position = append
            elif not isinstance(position, int):
                raise RecoveryError(
                    f"batch op {index}: insert 'position' must be an integer"
                )
            parse_fragment(fragment)
            if not 0 <= position <= doc_len:
                raise InvalidSegmentError(
                    f"batch op {index}: insert position {position} outside "
                    f"super document [0, {doc_len}]"
                )
            doc_len += len(fragment)
        elif sub_kind == "remove":
            position, length = sub.get("position"), sub.get("length")
            if not isinstance(position, int) or not isinstance(length, int):
                raise RecoveryError(
                    f"batch op {index}: remove needs integer 'position' "
                    f"and 'length'"
                )
            if length <= 0:
                raise InvalidSegmentError(
                    f"batch op {index}: removal length must be positive, "
                    f"got {length}"
                )
            if position < 0 or position + length > doc_len:
                raise InvalidSegmentError(
                    f"batch op {index}: removal span "
                    f"[{position}, {position + length}) outside super "
                    f"document [0, {doc_len})"
                )
            doc_len -= length
        elif sub_kind in ("remove_segment", "repack"):
            if not isinstance(sub.get("sid"), int):
                raise RecoveryError(
                    f"batch op {index}: {sub_kind} needs an integer 'sid'"
                )


def _apply_batch(db: LazyXMLDatabase, op: dict) -> list:
    """Apply a batch record's sub-ops in order; returns per-op results.

    This is the *only* application path for batches — the live commit and
    crash replay both dispatch here, so a sub-op that fails its apply-time
    validation is skipped identically in both histories (its result slot
    is ``None``).  The ``batch.*`` failpoints bracket the in-memory
    application: by the time the first fires, the record is already
    durable, so every crash drill must recover to the post-batch state.
    """
    hooks.fire("batch.before_apply")
    results: list = []
    for index, sub in enumerate(op["ops"]):
        if index == 1:
            hooks.fire("batch.mid_apply")
        try:
            # No validate_op pre-pass: every op method validates its own
            # preconditions before the first mutation (insert additionally
            # rolls back), so a failing sub-op raises the same typed error
            # without leaving partial state — and skipping the redundant
            # fragment re-parse is what makes large ingest batches cheap.
            results.append(apply_op(db, sub))
        except RecoveryError:
            raise
        except ReproError:
            # The sub-op's preconditions failed against mid-batch state;
            # the skip is deterministic because this same dispatcher runs
            # during replay against the same mid-batch state.
            results.append(None)
    hooks.fire("batch.after_apply")
    return results


def apply_op(db: LazyXMLDatabase, op: dict):
    """Apply one journal operation to ``db``; returns the op's result."""
    kind = op.get("op")
    if kind == BATCH_KIND:
        return _apply_batch(db, op)
    if kind == "insert":
        return db.insert(
            op["fragment"],
            op.get("position"),
            validate=op.get("validate", "fragment"),
        )
    if kind == "remove":
        return db.remove(op["position"], op["length"])
    if kind == "remove_segment":
        return db.remove_segment(op["sid"])
    if kind == "repack":
        return db.repack(op["sid"])
    if kind == "compact":
        return db.compact()
    raise RecoveryError(f"unknown journal operation {kind!r}")


def recover(
    directory: str | Path,
    *,
    mode: str = "dynamic",
    keep_text: bool = True,
    checkpoint_name: str = CHECKPOINT_NAME,
    sid_start: int = 1,
    sid_stride: int = 1,
) -> tuple[LazyXMLDatabase, RecoveryReport]:
    """Reconstruct the database stored in ``directory``.

    ``mode`` and ``keep_text`` configure the fresh database when no
    checkpoint exists yet; an existing checkpoint carries its own settings
    (including the sid namespace, which ``sid_start``/``sid_stride`` seed
    for fresh shard databases).  ``checkpoint_name`` lets the sharded
    coordinated-checkpoint layer use epoch-named checkpoint files.
    Raises :class:`RecoveryError` (via :class:`CheckpointError`) when the
    checkpoint itself is corrupt — losing the base state is not a condition
    replay can paper over — and on post-replay invariant violations.
    """
    directory = Path(directory)
    report = RecoveryReport(directory=str(directory))
    checkpoint_path = directory / checkpoint_name
    if checkpoint_path.exists():
        db, last_seq = read_checkpoint(checkpoint_path)
        report.checkpoint_found = True
        report.checkpoint_seq = last_seq
        report.last_seq = last_seq
    else:
        db = LazyXMLDatabase(
            mode=mode,
            keep_text=keep_text,
            sid_start=sid_start,
            sid_stride=sid_stride,
        )
    scan: JournalScan = read_journal(directory / JOURNAL_NAME)
    report.torn_tail = scan.torn_tail
    report.journal_valid_bytes = scan.valid_bytes
    for record in scan.records:
        seq = record["seq"]
        if seq <= report.last_seq:
            continue  # folded into the checkpoint already
        op = {key: value for key, value in record.items() if key != "seq"}
        try:
            validate_op(db, op)
            apply_op(db, op)
        except RecoveryError:
            raise
        except ReproError as exc:
            # The live call raised before mutating anything; skipping the
            # record reproduces the live outcome exactly.
            report.ops_skipped += 1
            report.skipped_details.append(f"seq {seq}: {exc}")
        else:
            report.ops_replayed += 1
        report.last_seq = seq
    try:
        db.check_invariants()
    except AssertionError as exc:
        raise RecoveryError(
            f"recovered database fails invariants ({report.describe()}): {exc}"
        ) from exc
    return db, report
