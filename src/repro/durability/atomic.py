"""Crash-safe file replacement: tmp file + fsync + ``os.replace`` + dir fsync.

The sequence guarantees that at every instant the target path holds either
the complete previous content or the complete new content — never a prefix
of either.  A crash before the rename leaves the old file untouched (plus a
stale ``*.tmp`` sibling, which the next write overwrites); a crash after
the rename leaves the new file in place.  The final directory fsync makes
the rename itself durable on filesystems that defer directory updates.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.durability import hooks

__all__ = ["atomic_write_text", "fsync_directory"]


def atomic_write_text(path: str | Path, data: str, *, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``data``."""
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    payload = data.encode(encoding)
    hooks.fire("atomic.before_tmp_write")
    fd = os.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, payload)
        hooks.fire("atomic.after_tmp_write")
        os.fsync(fd)
    finally:
        os.close(fd)
    hooks.fire("atomic.after_tmp_fsync")
    os.replace(str(tmp), str(target))
    hooks.fire("atomic.after_replace")
    fsync_directory(target.parent)
    hooks.fire("atomic.after_dir_fsync")


def fsync_directory(directory: str | Path) -> None:
    """Fsync a directory so renames/creations inside it are durable.

    Best-effort: some platforms/filesystems refuse to open or fsync a
    directory; crash-consistency then degrades to what the OS provides.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
