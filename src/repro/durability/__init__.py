"""Durability subsystem: write-ahead journal, checkpoints, crash recovery.

The paper treats the update log as an in-memory structure that can be
rebuilt "during maintenance hours"; a production service cannot afford to
lose committed updates or corrupt its only snapshot when the process dies.
This package adds the missing durability layer:

- :mod:`repro.durability.wal` — an append-only journal of structural
  operations (insert / remove / remove_segment / repack / compact), each
  record length-prefixed and CRC32-checksummed, fsynced before the update
  is acknowledged;
- :mod:`repro.durability.checkpoint` — atomic snapshots (tmp file + fsync +
  ``os.replace`` + directory fsync) wrapping :func:`repro.storage.dumps`
  with an embedded payload checksum and the journal sequence number they
  cover;
- :mod:`repro.durability.recovery` — loads the latest valid checkpoint,
  replays the journal tail, discards a torn final record, and finishes with
  ``check_invariants()``;
- :mod:`repro.durability.database` — :class:`DurableDatabase`, the facade
  that journals every structural op before applying it in memory;
- :mod:`repro.durability.hooks` — monkeypatchable failpoints at every
  fsync/write/rename boundary, driven by the fault-injection harness in
  ``tests/failpoints.py``.

Attribute access is lazy so that :mod:`repro.storage` can import
:mod:`repro.durability.atomic` without creating an import cycle through
:mod:`repro.durability.database` (which itself imports the storage codec).
"""

from __future__ import annotations

__all__ = [
    "DurableDatabase",
    "Journal",
    "JournalScan",
    "read_journal",
    "write_checkpoint",
    "read_checkpoint",
    "recover",
    "RecoveryReport",
    "apply_op",
    "validate_op",
    "atomic_write_text",
]

_EXPORTS = {
    "DurableDatabase": ("repro.durability.database", "DurableDatabase"),
    "Journal": ("repro.durability.wal", "Journal"),
    "JournalScan": ("repro.durability.wal", "JournalScan"),
    "read_journal": ("repro.durability.wal", "read_journal"),
    "write_checkpoint": ("repro.durability.checkpoint", "write_checkpoint"),
    "read_checkpoint": ("repro.durability.checkpoint", "read_checkpoint"),
    "recover": ("repro.durability.recovery", "recover"),
    "RecoveryReport": ("repro.durability.recovery", "RecoveryReport"),
    "apply_op": ("repro.durability.recovery", "apply_op"),
    "validate_op": ("repro.durability.recovery", "validate_op"),
    "atomic_write_text": ("repro.durability.atomic", "atomic_write_text"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
