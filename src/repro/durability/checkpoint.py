"""Atomic checkpoints: a checksummed snapshot plus the journal seq it covers.

A checkpoint file is a JSON envelope around :func:`repro.storage.dumps`
output:

    {"format": "repro-checkpoint", "version": 1,
     "last_seq": <highest journal seq folded into the snapshot>,
     "crc32": <crc32 of the UTF-8 payload bytes>,
     "payload": "<storage.dumps string>"}

The envelope is written with :func:`repro.durability.atomic
.atomic_write_text`, so the checkpoint path always holds a complete old or
complete new checkpoint.  ``last_seq`` makes checkpointing idempotent with
respect to the journal: if the process dies after the checkpoint replace
but before the journal truncation, recovery skips every journal record
with ``seq <= last_seq`` instead of double-applying it.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

from repro.core.database import LazyXMLDatabase
from repro.durability import hooks
from repro.durability.atomic import atomic_write_text
from repro.errors import CheckpointError

__all__ = ["CHECKPOINT_FORMAT", "CHECKPOINT_VERSION", "write_checkpoint", "read_checkpoint"]

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1


def write_checkpoint(db: LazyXMLDatabase, path: str | Path, last_seq: int) -> int:
    """Atomically write a checkpoint of ``db`` covering journal ``last_seq``.

    Returns the payload's crc32 — the coordinated shard checkpoint records
    it in its manifest so recovery can prove every shard checkpoint
    belongs to the same epoch.
    """
    from repro.storage import dumps

    payload = dumps(db)
    crc = zlib.crc32(payload.encode("utf-8"))
    envelope = json.dumps(
        {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "last_seq": last_seq,
            "crc32": crc,
            "payload": payload,
        }
    )
    hooks.fire("checkpoint.before_write")
    atomic_write_text(path, envelope)
    hooks.fire("checkpoint.after_write")
    return crc


def read_checkpoint(path: str | Path) -> tuple[LazyXMLDatabase, int]:
    """Load a checkpoint, verifying structure and checksum.

    Returns ``(database, last_seq)``.  Raises :class:`CheckpointError` on
    any malformation — an unreadable envelope, wrong format/version tags,
    ill-typed fields, a checksum mismatch, or a payload the snapshot codec
    rejects.
    """
    from repro.storage import SnapshotError, loads

    try:
        raw = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        # Byte-level corruption can land mid-codepoint and fail the decode
        # before the checksum ever runs; that is still "corrupt checkpoint".
        raise CheckpointError(f"checkpoint {path} is not valid UTF-8: {exc}") from exc
    try:
        envelope = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"checkpoint {path} is not valid JSON: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path} is not a repro checkpoint")
    if envelope.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version: {envelope.get('version')!r}"
        )
    payload = envelope.get("payload")
    crc = envelope.get("crc32")
    last_seq = envelope.get("last_seq")
    if not isinstance(payload, str) or not isinstance(crc, int):
        raise CheckpointError(f"checkpoint {path} has ill-typed payload/crc32 fields")
    if not isinstance(last_seq, int) or last_seq < 0:
        raise CheckpointError(f"checkpoint {path} has an invalid last_seq")
    if zlib.crc32(payload.encode("utf-8")) != crc:
        raise CheckpointError(
            f"checkpoint {path} failed its checksum (stored {crc})"
        )
    try:
        db = loads(payload)
    except SnapshotError as exc:
        raise CheckpointError(f"checkpoint {path} payload rejected: {exc}") from exc
    return db, last_seq
