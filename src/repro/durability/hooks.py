"""Failpoints: monkeypatchable hooks in the durability write path.

Every boundary that matters for crash consistency — buffer writes, fsyncs,
renames, truncations — calls :func:`fire` with a well-known name.  In
production nothing is registered and a fire is a single dict lookup; the
fault-injection harness (``tests/failpoints.py``) registers callbacks that
raise a simulated crash at a chosen boundary, after which the test discards
the in-memory database (the "process died") and runs recovery against
whatever reached the filesystem.

The registry is intentionally global and flat: a failpoint name maps to one
callback, and the set of legal names is closed (:data:`FAILPOINT_NAMES`) so
a typo in a test fails loudly instead of silently never firing.
"""

from __future__ import annotations

from typing import Callable

__all__ = [
    "FAILPOINT_NAMES",
    "fire",
    "set_failpoint",
    "clear_failpoint",
    "clear_all_failpoints",
    "active_failpoints",
]

#: Every failpoint the write path declares, in rough execution order.
FAILPOINT_NAMES = frozenset(
    {
        # Journal append: header write, payload write, fsync, acknowledge.
        "wal.append.before_write",
        "wal.append.mid_write",  # header on disk, payload missing -> torn record
        "wal.append.after_write",  # record complete but not yet fsynced
        "wal.append.after_fsync",  # record durable, op not yet applied in memory
        # Journal truncation (runs after a successful checkpoint).
        "wal.truncate.before",
        "wal.truncate.after",
        # Atomic file replacement (storage.save and checkpoints).
        "atomic.before_tmp_write",
        "atomic.after_tmp_write",  # tmp file written, not fsynced
        "atomic.after_tmp_fsync",  # tmp durable, target not yet replaced
        "atomic.after_replace",  # target replaced, directory not fsynced
        "atomic.after_dir_fsync",
        # Checkpoint: envelope write then journal truncation.
        "checkpoint.before_write",
        "checkpoint.after_write",  # checkpoint durable, journal not truncated
        "checkpoint.after_truncate",
        # Sharded coordinated checkpoint: the manifest replace is the commit
        # point of the two-phase protocol (fired only by sharded sessions).
        "manifest.before_write",  # phase-1 snapshots durable, manifest old
        "manifest.after_write",  # manifest names the new epoch, journals untruncated
        # Batched apply: the batch record is already durable (the journal
        # fsync is the single commit point), these bracket the in-memory
        # application of its sub-ops.  A crash at any of them must recover
        # to the *post*-batch state — never a partially applied one.
        "batch.before_apply",  # record durable, no sub-op applied yet
        "batch.mid_apply",  # first sub-op applied, the rest pending
        "batch.after_apply",  # every sub-op applied in memory
    }
)

_active: dict[str, Callable[[str], None]] = {}


def fire(name: str) -> None:
    """Invoke the callback registered for ``name``, if any.

    Called from the write path; must stay cheap when nothing is registered.
    """
    callback = _active.get(name)
    if callback is not None:
        callback(name)


def set_failpoint(name: str, callback: Callable[[str], None]) -> None:
    """Register ``callback`` to run whenever failpoint ``name`` is reached."""
    if name not in FAILPOINT_NAMES:
        raise ValueError(
            f"unknown failpoint {name!r}; valid names: {sorted(FAILPOINT_NAMES)}"
        )
    _active[name] = callback


def clear_failpoint(name: str) -> None:
    """Remove the callback for ``name`` (no-op when none is registered)."""
    _active.pop(name, None)


def clear_all_failpoints() -> None:
    """Remove every registered callback."""
    _active.clear()


def active_failpoints() -> list[str]:
    """Names with a registered callback (test-suite hygiene checks)."""
    return sorted(_active)
