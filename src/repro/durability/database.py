"""`DurableDatabase` — a journaled, crash-recoverable LazyXMLDatabase.

Every structural operation follows the same commit protocol:

1. **validate** — :func:`~repro.durability.recovery.validate_op` runs the
   operation's full precondition check against the current state, so
   nothing unreplayable ever reaches the journal;
2. **journal** — the op record is appended and fsynced
   (:meth:`~repro.durability.wal.Journal.append`); only now is the update
   considered committed;
3. **apply** — the op mutates the in-memory database through the exact
   dispatcher recovery replays with, keeping live and replayed histories
   identical.

A crash at any point leaves the directory describing either the pre-op
state (journal record absent or torn) or the post-op state (record fully
durable); recovery never reconstructs anything else — the fault-injection
suite (``tests/test_durability_failpoints.py``) kills the write at every
boundary and asserts exactly that.

Checkpoints fold the journal into an atomic snapshot: write the checkpoint
(carrying ``last_seq``), then truncate the journal.  A crash between the
two steps leaves stale journal records, which recovery skips by sequence
number.

Read-side API (joins, path queries, stats, ``text`` …) is delegated to the
wrapped :class:`~repro.core.database.LazyXMLDatabase` via attribute
forwarding; only the five structural ops are intercepted.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.durability import hooks
from repro.durability.atomic import fsync_directory
from repro.durability.checkpoint import write_checkpoint
from repro.durability.recovery import (
    CHECKPOINT_NAME,
    JOURNAL_NAME,
    apply_op,
    recover,
    validate_op,
)
from repro.durability.wal import Journal
from repro.errors import JournalError

__all__ = ["DurableDatabase"]


class DurableDatabase:
    """A :class:`LazyXMLDatabase` whose updates survive process death.

    Parameters
    ----------
    directory:
        Holds ``checkpoint.json`` and ``journal.wal``.  Created (with
        parents) when missing; an existing directory is opened through
        crash recovery.
    mode, keep_text:
        Forwarded to the fresh database when the directory is empty; an
        existing checkpoint carries its own settings.
    checkpoint_every:
        Optional op count after which a checkpoint is taken automatically.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        mode: str = "dynamic",
        keep_text: bool = True,
        checkpoint_every: int | None = None,
        checkpoint_name: str = CHECKPOINT_NAME,
        sid_start: int = 1,
        sid_stride: int = 1,
    ):
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be a positive op count")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._checkpoint_name = checkpoint_name
        self.db, self.recovery_report = recover(
            self.directory,
            mode=mode,
            keep_text=keep_text,
            checkpoint_name=checkpoint_name,
            sid_start=sid_start,
            sid_stride=sid_stride,
        )
        self._last_seq = self.recovery_report.last_seq
        self._checkpoint_seq = self.recovery_report.checkpoint_seq
        journal_path = self.directory / JOURNAL_NAME
        journal_existed = journal_path.exists()
        # Physically trim a torn tail before appending past it: O_APPEND
        # would otherwise strand new records behind an invalid one.
        self._journal = Journal(
            journal_path,
            truncate_to=(
                self.recovery_report.journal_valid_bytes
                if self.recovery_report.torn_tail
                else None
            ),
        )
        if not journal_existed:
            fsync_directory(self.directory)
        self._checkpoint_every = checkpoint_every
        self._ops_since_checkpoint = 0
        self._poisoned: str | None = None
        self._deferred: list[dict] | None = None

    # ------------------------------------------------------------------
    # lifecycle

    @classmethod
    def open(cls, directory: str | Path, **kwargs: Any) -> "DurableDatabase":
        """Open (or create) a durable directory; alias of the constructor."""
        return cls(directory, **kwargs)

    def close(self) -> None:
        """Release the journal file descriptor (no implicit checkpoint)."""
        self._journal.close()

    def __enter__(self) -> "DurableDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the commit protocol

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently committed operation."""
        return self._last_seq

    @property
    def checkpoint_seq(self) -> int:
        """Sequence number folded into the current checkpoint (0 = none).

        A replication follower uses this as a journal-generation marker:
        every checkpoint truncates the journal, so when the primary's
        ``checkpoint_seq`` changes, the follower's cached tail offset is
        stale and must be reset to 0.
        """
        return self._checkpoint_seq

    @property
    def journal_size(self) -> int:
        """Current journal length in bytes."""
        return self._journal.size()

    @property
    def journal_path(self) -> Path:
        """Path of the journal file (for replication tail shipping)."""
        return self.directory / JOURNAL_NAME

    @property
    def checkpoint_path(self) -> Path:
        """Path of the current checkpoint file (for replica full resync)."""
        return self.directory / self._checkpoint_name

    def _commit(self, op: dict):
        if self._poisoned is not None:
            raise JournalError(
                f"database is read-only after a journal failure "
                f"({self._poisoned}); reopen {self.directory} to recover"
            )
        if self._deferred is not None:
            # Deferred journaling (the sharded coordinator's batching
            # hook): validate and apply now — later ops' routing depends
            # on this op's effects — and buffer the record; the journal
            # write happens once, at :meth:`flush_deferred`.
            validate_op(self.db, op)
            result = apply_op(self.db, op)
            self._deferred.append(dict(op))
            return result
        validate_op(self.db, op)
        seq = self._last_seq + 1
        try:
            self._journal.append(seq, op)
        except Exception as exc:
            # The record may be partially on disk; in-memory state is still
            # pre-op and recovery will discard the torn tail, but *this*
            # handle can no longer prove durability for further writes.
            self._poisoned = f"append of seq {seq} failed: {exc}"
            raise
        self._last_seq = seq
        result = apply_op(self.db, op)
        self._ops_since_checkpoint += 1
        if (
            self._checkpoint_every is not None
            and self._ops_since_checkpoint >= self._checkpoint_every
        ):
            self.checkpoint()
        return result

    def checkpoint(self) -> None:
        """Fold the journal into an atomic snapshot, then truncate it."""
        write_checkpoint(
            self.db, self.directory / self._checkpoint_name, self._last_seq
        )
        self._checkpoint_seq = self._last_seq
        self._journal.truncate()
        hooks.fire("checkpoint.after_truncate")
        self._ops_since_checkpoint = 0

    def export_checkpoint(self, name: str) -> int:
        """Phase 1 of a coordinated checkpoint: write a snapshot under
        ``name`` *without* truncating the journal; returns its crc32.

        The journal keeps covering every committed op until
        :meth:`confirm_checkpoint`, so a crash before the coordinator's
        manifest swap loses nothing — the old epoch stays recoverable.
        """
        crc = write_checkpoint(self.db, self.directory / name, self._last_seq)
        self._checkpoint_name = name
        return crc

    def confirm_checkpoint(self) -> None:
        """Phase 2 of a coordinated checkpoint: the manifest now names the
        new epoch, so the journal (folded into it) can be truncated."""
        self._checkpoint_seq = self._last_seq
        self._journal.truncate()
        hooks.fire("checkpoint.after_truncate")
        self._ops_since_checkpoint = 0

    # ------------------------------------------------------------------
    # journaled structural operations

    def commit(self, op: dict):
        """Journal and apply one op record (the replication entry point).

        A follower re-commits each shipped record through this, so its own
        journal mirrors the primary's with aligned sequence numbers; the op
        passes the same validate → journal → apply protocol as a local call.
        """
        return self._commit(dict(op))

    def insert(
        self, fragment: str, position: int | None = None, *, validate: str = "fragment"
    ):
        """Journaled :meth:`LazyXMLDatabase.insert`."""
        if position is None:
            position = self.db.document_length
        op = {"op": "insert", "fragment": fragment, "position": position}
        if validate != "fragment":
            op["validate"] = validate
        return self._commit(op)

    def remove(self, position: int, length: int):
        """Journaled :meth:`LazyXMLDatabase.remove`."""
        return self._commit({"op": "remove", "position": position, "length": length})

    def remove_segment(self, sid: int):
        """Journaled :meth:`LazyXMLDatabase.remove_segment`."""
        return self._commit({"op": "remove_segment", "sid": sid})

    def repack(self, sid: int):
        """Journaled :meth:`LazyXMLDatabase.repack`."""
        return self._commit({"op": "repack", "sid": sid})

    def compact(self):
        """Journaled :meth:`LazyXMLDatabase.compact`."""
        return self._commit({"op": "compact"})

    def apply_batch(self, ops: list[dict]) -> list:
        """Journal and apply several structural ops as **one** commit.

        The whole batch is a single CRC-framed journal record appended and
        fsynced once — the fsync is the only commit point, so a crash
        anywhere leaves either none of the batch durable (record absent or
        torn) or all of it (record complete): recovery can never observe a
        partially committed batch.  Sub-ops apply in order through the
        recovery dispatcher; one whose preconditions fail mid-batch is
        skipped (``None`` in the returned result list), identically live
        and in replay.  Counts as one op toward ``checkpoint_every``.
        """
        return self._commit(
            {"op": "batch", "ops": [dict(sub) for sub in ops]}
        )

    # ------------------------------------------------------------------
    # deferred journaling (the sharded coordinator's batching hook)

    def begin_deferred(self) -> None:
        """Buffer subsequent commits instead of journaling them per op.

        Each commit still validates and applies immediately (later ops may
        depend on its effects); the journal write is deferred until
        :meth:`flush_deferred` appends the whole buffer as **one** batch
        record with one fsync.  Until that flush the buffered ops are
        applied in memory but not durable — callers must not acknowledge
        them before flushing.
        """
        self._deferred = []

    def suspend_deferred(self) -> None:
        """Journal per op again until :meth:`resume_deferred`.

        Only legal with an empty buffer (flush first): the sharded
        coordinator uses this for document-map-changing ops, whose meta
        record predicts the exact next journal seq.
        """
        if self._deferred:
            raise JournalError(
                "cannot suspend deferred journaling with buffered ops; "
                "flush first"
            )
        self._deferred = None

    def resume_deferred(self) -> None:
        """Re-enter deferred journaling after :meth:`suspend_deferred`."""
        self._deferred = []

    def flush_deferred(self, *, end: bool = False) -> None:
        """Append the buffered ops as one batch journal record (one fsync).

        The buffered ops are already applied in memory, so the record is
        journaled *without* re-applying.  ``end=True`` also leaves
        deferred mode.  An append failure poisons the handle exactly like
        a per-op commit: the applied-but-unjournaled suffix can no longer
        be proven durable through this handle.
        """
        ops = self._deferred or []
        self._deferred = None if end else []
        if not ops:
            return
        if self._poisoned is not None:
            raise JournalError(
                f"database is read-only after a journal failure "
                f"({self._poisoned}); reopen {self.directory} to recover"
            )
        seq = self._last_seq + 1
        try:
            self._journal.append(seq, {"op": "batch", "ops": ops})
        except Exception as exc:
            self._poisoned = f"append of seq {seq} failed: {exc}"
            raise
        self._last_seq = seq
        self._ops_since_checkpoint += 1
        if (
            self._checkpoint_every is not None
            and self._ops_since_checkpoint >= self._checkpoint_every
        ):
            self.checkpoint()

    # ------------------------------------------------------------------
    # read-side delegation

    def __getattr__(self, name: str):
        # Only called for attributes not found on DurableDatabase itself,
        # so the journaled ops above always win over the raw ones.
        return getattr(self.db, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DurableDatabase {self.directory} seq={self._last_seq} "
            f"segments={self.db.segment_count}>"
        )
