"""Append-only write-ahead journal of structural operations.

On-disk format: a flat sequence of records, each

    +----------------+----------------+------------------------+
    | length (u32 BE) | crc32 (u32 BE) | payload: UTF-8 JSON    |
    +----------------+----------------+------------------------+

The payload is a JSON object carrying a monotonically increasing ``seq``
plus the operation fields (see :func:`repro.durability.recovery.apply_op`).
The CRC covers the payload bytes, so a record torn by a crash mid-append —
a header without its payload, a short payload, or a payload whose bytes
never all reached disk — fails verification and is discarded by
:func:`read_journal`.  Only the *tail* of the journal can legally be torn:
scanning stops at the first invalid record and reports everything after it
as non-replayable.

Appends go through a single file descriptor opened with ``O_APPEND``; each
record is written header-then-payload and fsynced before the append
returns, which is what lets :class:`~repro.durability.database
.DurableDatabase` acknowledge an update as committed.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Iterable, NamedTuple

from time import perf_counter

from repro.durability import hooks
from repro.errors import JournalError
from repro.obs.metrics import LATENCY_BUCKETS, METRICS

__all__ = [
    "Journal",
    "JournalScan",
    "read_journal",
    "tail_journal",
    "RECORD_HEADER",
]

_M_APPENDS = METRICS.counter(
    "wal.appends", unit="records", site="Journal.append"
)
_M_BYTES = METRICS.counter(
    "wal.bytes_written", unit="bytes", site="Journal.append"
)
_M_FSYNCS = METRICS.counter(
    "wal.fsyncs", unit="calls", site="Journal.append"
)
_M_TRUNCATES = METRICS.counter(
    "wal.truncates", unit="calls", site="Journal.truncate"
)
_H_FSYNC = METRICS.histogram(
    "wal.fsync.seconds",
    unit="seconds",
    site="Journal.append",
    boundaries=LATENCY_BUCKETS,
)

#: (payload length, payload crc32), big-endian.
RECORD_HEADER = struct.Struct(">II")


class JournalScan(NamedTuple):
    """Result of scanning a journal file."""

    records: list[dict]  # every valid record, in append order
    valid_bytes: int  # offset of the first invalid byte (== file size if clean)
    torn_tail: bool  # True when bytes past ``valid_bytes`` were discarded


def _scan_records(data: bytes, offset: int) -> JournalScan:
    """Parse records from ``data`` starting at byte ``offset``.

    ``offset`` must be a record boundary (0, or the ``valid_bytes`` of an
    earlier scan of the same file); starting mid-record desynchronizes the
    framing and the scan stops at the first CRC mismatch, reporting a torn
    tail — which is also exactly what happens on genuinely torn data, so a
    caller with a stale offset makes progress only after resetting to 0.
    """
    records: list[dict] = []
    while offset + RECORD_HEADER.size <= len(data):
        length, crc = RECORD_HEADER.unpack_from(data, offset)
        start = offset + RECORD_HEADER.size
        end = start + length
        if end > len(data):
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict) or not isinstance(record.get("seq"), int):
            break
        records.append(record)
        offset = end
    return JournalScan(records, offset, offset < len(data))


def read_journal(path: str | Path) -> JournalScan:
    """Scan a journal file, returning valid records and torn-tail status.

    Never raises on torn or trailing-garbage data: a crash mid-append is an
    expected state, and recovery's contract is to keep every record that
    was fully acknowledged and drop the one that was not.
    """
    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        return JournalScan([], 0, False)
    return _scan_records(data, 0)


def tail_journal(path: str | Path, from_offset: int = 0) -> JournalScan:
    """Incrementally scan a journal from a previously returned offset.

    Returns only the records that start at or after ``from_offset`` — a
    poller (a replication follower, the pressure monitor) does O(new
    records) work per call instead of re-parsing the whole file, by
    feeding each scan's ``valid_bytes`` back as the next ``from_offset``.

    ``from_offset`` must be a record boundary of the *same* journal
    generation.  Two staleness signatures are handled without raising:

    - the file shrank below ``from_offset`` (the journal was truncated by
      a checkpoint): the scan restarts from byte 0, returning the whole
      current journal;
    - the file was truncated and regrew past ``from_offset`` (the offset
      now points mid-record): the framing fails CRC immediately and the
      scan reports zero records with a torn tail — callers that track the
      writer's checkpoint seq reset their offset to 0 on a checkpoint
      instead of ever hitting this.
    """
    if from_offset < 0:
        raise ValueError(f"from_offset must be >= 0, got {from_offset}")
    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        return JournalScan([], 0, False)
    if from_offset > len(data):
        return _scan_records(data, 0)
    return _scan_records(data, from_offset)


class Journal:
    """An open journal file accepting durable appends.

    ``truncate_to`` trims the file on open — recovery passes the scan's
    ``valid_bytes`` so a torn tail is physically removed before new records
    are appended after it (O_APPEND would otherwise write past the garbage
    and strand every later record behind an invalid one).
    """

    def __init__(self, path: str | Path, *, truncate_to: int | None = None):
        self.path = Path(path)
        self._fd: int | None = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        if truncate_to is not None and truncate_to < os.fstat(self._fd).st_size:
            os.ftruncate(self._fd, truncate_to)
            os.fsync(self._fd)

    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._fd is None

    def _require_open(self) -> int:
        if self._fd is None:
            raise JournalError(f"journal {self.path} is closed")
        return self._fd

    def append(self, seq: int, op: dict) -> None:
        """Durably append one operation record; returns only once fsynced."""
        fd = self._require_open()
        body = dict(op)
        body["seq"] = seq
        payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
        header = RECORD_HEADER.pack(len(payload), zlib.crc32(payload))
        hooks.fire("wal.append.before_write")
        os.write(fd, header)
        hooks.fire("wal.append.mid_write")
        os.write(fd, payload)
        hooks.fire("wal.append.after_write")
        if METRICS.enabled:
            fsync_start = perf_counter()
            os.fsync(fd)
            _H_FSYNC.observe(perf_counter() - fsync_start)
            _M_APPENDS.inc()
            _M_BYTES.inc(len(header) + len(payload))
            _M_FSYNCS.inc()
        else:
            os.fsync(fd)
        hooks.fire("wal.append.after_fsync")

    def append_all(self, records: Iterable[tuple[int, dict]]) -> None:
        """Append several ``(seq, op)`` records (each individually durable)."""
        for seq, op in records:
            self.append(seq, op)

    def truncate(self) -> None:
        """Discard every record (after a successful checkpoint)."""
        fd = self._require_open()
        hooks.fire("wal.truncate.before")
        os.ftruncate(fd, 0)
        os.fsync(fd)
        if METRICS.enabled:
            _M_TRUNCATES.inc()
            _M_FSYNCS.inc()
        hooks.fire("wal.truncate.after")

    def size(self) -> int:
        """Current journal size in bytes."""
        return os.fstat(self._require_open()).st_size

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    # ------------------------------------------------------------------

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<Journal {self.path} ({state})>"
