"""Document object model for offset-exact XML parsing.

The paper's update model is *text editing*: a segment is identified only by a
character offset and a length inside the super document.  Everything in this
library therefore needs character-exact element spans, which is the one thing
general-purpose XML libraries do not expose.  This module defines the small
DOM the in-house parser produces:

- :class:`XMLElement` — one element with its tag, attributes, character span
  ``[start, end)``, depth (``level``, 1-based at the fragment root), parent
  and children;
- :class:`XMLDocument` — the parse result: the raw text, the root element,
  and flat pre-order access to every element.

Spans are end-exclusive: ``text[e.start:e.end]`` is exactly the element's
markup including both tags.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

__all__ = ["XMLElement", "XMLDocument"]


@dataclass
class XMLElement:
    """One parsed element with its exact character span.

    ``start`` is the offset of the opening ``<``; ``end`` is the offset one
    past the closing ``>`` of the end tag (or of the ``/>`` for an empty
    element).  ``level`` is 1 for the fragment's root element.
    """

    tag: str
    start: int
    end: int
    level: int
    attributes: dict[str, str] = field(default_factory=dict)
    parent: "XMLElement | None" = field(default=None, repr=False)
    children: list["XMLElement"] = field(default_factory=list, repr=False)

    @property
    def span(self) -> tuple[int, int]:
        """The ``(start, end)`` pair."""
        return self.start, self.end

    @property
    def length(self) -> int:
        """Number of characters the element occupies."""
        return self.end - self.start

    def contains(self, other: "XMLElement") -> bool:
        """True when this element strictly contains ``other`` (Def. 1 style)."""
        return self.start < other.start and self.end > other.end

    def iter(self) -> Iterator["XMLElement"]:
        """Pre-order iteration over this element and its descendants."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def descendants(self) -> Iterator["XMLElement"]:
        """Pre-order iteration over strict descendants."""
        it = self.iter()
        next(it)
        yield from it

    def ancestors(self) -> Iterator["XMLElement"]:
        """Iterate from the parent up to the fragment root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def text_of(self, source: str) -> str:
        """Return the raw markup of this element from the original text."""
        return source[self.start : self.end]

    def __hash__(self) -> int:  # identity-based: elements are tree nodes
        return id(self)


class XMLDocument:
    """Result of parsing an XML fragment.

    Attributes
    ----------
    text:
        The exact input text.
    root:
        The single root :class:`XMLElement`.
    elements:
        Every element in document (pre-)order; ``elements[0] is root``.
    """

    def __init__(self, text: str, root: XMLElement, elements: list[XMLElement]):
        self.text = text
        self.root = root
        self.elements = elements

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterator[XMLElement]:
        return iter(self.elements)

    def elements_by_tag(self) -> dict[str, list[XMLElement]]:
        """Group elements by tag name, preserving document order."""
        by_tag: dict[str, list[XMLElement]] = {}
        for element in self.elements:
            by_tag.setdefault(element.tag, []).append(element)
        return by_tag

    def tags(self) -> set[str]:
        """The set of distinct tag names appearing in the fragment."""
        return {element.tag for element in self.elements}

    def find_innermost(self, offset: int) -> XMLElement | None:
        """Return the deepest element whose span strictly contains ``offset``.

        ``offset`` is "strictly inside" an element when it falls after the
        opening ``<`` and before the final ``>`` — i.e. text inserted at that
        offset would land inside the element's markup.  Returns ``None`` when
        the offset is outside the root element.
        """
        node = self.root
        if not (node.start < offset < node.end):
            return None
        while True:
            inner = None
            for child in node.children:
                if child.start < offset < child.end:
                    inner = child
                    break
            if inner is None:
                return node
            node = inner
