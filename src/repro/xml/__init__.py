"""Offset-exact XML substrate.

The paper's update model treats the XML database as a text file edited in
place; this package provides the parsing machinery that maps text spans to
element structure with exact character offsets:

- :mod:`repro.xml.tokenizer` — lexing with spans;
- :mod:`repro.xml.parser` — well-formedness checking tree builder;
- :mod:`repro.xml.model` — the span-carrying DOM;
- :mod:`repro.xml.serializer` — deterministic text construction for the
  workload generators.
"""

from repro.xml.model import XMLDocument, XMLElement
from repro.xml.parser import element_records, is_well_formed, parse, parse_fragment
from repro.xml.serializer import Node, escape_attribute, escape_text, serialize
from repro.xml.tokenizer import Token, TokenKind, tokenize

__all__ = [
    "XMLDocument",
    "XMLElement",
    "parse",
    "parse_fragment",
    "element_records",
    "is_well_formed",
    "Node",
    "serialize",
    "escape_text",
    "escape_attribute",
    "Token",
    "TokenKind",
    "tokenize",
]
