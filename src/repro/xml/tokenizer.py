"""A character-exact XML tokenizer.

Splits XML text into a stream of tokens, each carrying the exact character
span ``[start, end)`` it occupies in the input.  The tokenizer recognizes the
constructs the update model needs to step over faithfully:

- start tags (with attributes), end tags, empty-element tags;
- character data;
- comments, CDATA sections, processing instructions;
- the XML declaration and (non-nested) DOCTYPE declarations;
- entity and character references inside character data (passed through as
  raw text — offsets, not decoded values, are what matters here).

Offsets must survive round-trips, so nothing is normalized: the concatenation
of all token source spans reproduces the input exactly.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import XMLSyntaxError

__all__ = ["TokenKind", "Token", "tokenize"]

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")
_WHITESPACE = set(" \t\r\n")


class TokenKind(Enum):
    """Discriminates the token variants produced by :func:`tokenize`."""

    START_TAG = "start_tag"
    END_TAG = "end_tag"
    EMPTY_TAG = "empty_tag"
    TEXT = "text"
    COMMENT = "comment"
    CDATA = "cdata"
    PI = "pi"
    DECLARATION = "declaration"
    DOCTYPE = "doctype"


@dataclass
class Token:
    """One lexical unit with its exact source span.

    ``name`` is the tag/PI target name where applicable, ``attributes`` is
    populated for start and empty tags.
    """

    kind: TokenKind
    start: int
    end: int
    name: str = ""
    attributes: dict[str, str] = field(default_factory=dict)


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


def _scan_name(text: str, pos: int) -> tuple[str, int]:
    if pos >= len(text) or not _is_name_start(text[pos]):
        raise XMLSyntaxError("expected a name", offset=pos)
    end = pos + 1
    n = len(text)
    while end < n and _is_name_char(text[end]):
        end += 1
    return text[pos:end], end


def _skip_whitespace(text: str, pos: int) -> int:
    n = len(text)
    while pos < n and text[pos] in _WHITESPACE:
        pos += 1
    return pos


def _scan_attributes(text: str, pos: int) -> tuple[dict[str, str], int]:
    """Scan ``name="value"`` pairs until ``>`` or ``/>``; return (attrs, pos)."""
    attributes: dict[str, str] = {}
    n = len(text)
    while True:
        pos = _skip_whitespace(text, pos)
        if pos >= n:
            raise XMLSyntaxError("unterminated tag", offset=pos)
        if text[pos] in ">/":
            return attributes, pos
        name, pos = _scan_name(text, pos)
        pos = _skip_whitespace(text, pos)
        if pos >= n or text[pos] != "=":
            raise XMLSyntaxError(f"attribute {name!r} missing '='", offset=pos)
        pos = _skip_whitespace(text, pos + 1)
        if pos >= n or text[pos] not in "\"'":
            raise XMLSyntaxError(
                f"attribute {name!r} value must be quoted", offset=pos
            )
        quote = text[pos]
        value_end = text.find(quote, pos + 1)
        if value_end == -1:
            raise XMLSyntaxError(
                f"unterminated value for attribute {name!r}", offset=pos
            )
        attributes[name] = text[pos + 1 : value_end]
        pos = value_end + 1


def _scan_until(text: str, pos: int, marker: str, what: str) -> int:
    """Return the offset one past ``marker``; raise when not found."""
    found = text.find(marker, pos)
    if found == -1:
        raise XMLSyntaxError(f"unterminated {what}", offset=pos)
    return found + len(marker)


def tokenize(text: str) -> Iterator[Token]:
    """Yield :class:`Token` objects covering ``text`` completely and in order.

    Raises :class:`~repro.errors.XMLSyntaxError` on lexical problems; tag
    *nesting* errors are the parser's job, not the tokenizer's.
    """
    pos = 0
    n = len(text)
    while pos < n:
        if text[pos] != "<":
            # Character data up to the next markup (or end of input).
            next_lt = text.find("<", pos)
            end = n if next_lt == -1 else next_lt
            yield Token(TokenKind.TEXT, pos, end)
            pos = end
            continue
        if text.startswith("<!--", pos):
            end = _scan_until(text, pos + 4, "-->", "comment")
            yield Token(TokenKind.COMMENT, pos, end)
            pos = end
        elif text.startswith("<![CDATA[", pos):
            end = _scan_until(text, pos + 9, "]]>", "CDATA section")
            yield Token(TokenKind.CDATA, pos, end)
            pos = end
        elif text.startswith("<!DOCTYPE", pos):
            end = _scan_until(text, pos + 9, ">", "DOCTYPE declaration")
            yield Token(TokenKind.DOCTYPE, pos, end)
            pos = end
        elif text.startswith("<?xml", pos) and pos == 0:
            end = _scan_until(text, pos + 5, "?>", "XML declaration")
            yield Token(TokenKind.DECLARATION, pos, end)
            pos = end
        elif text.startswith("<?", pos):
            name, name_end = _scan_name(text, pos + 2)
            end = _scan_until(text, name_end, "?>", "processing instruction")
            yield Token(TokenKind.PI, pos, end, name=name)
            pos = end
        elif text.startswith("</", pos):
            name, name_end = _scan_name(text, pos + 2)
            close = _skip_whitespace(text, name_end)
            if close >= n or text[close] != ">":
                raise XMLSyntaxError(
                    f"malformed end tag for {name!r}", offset=pos
                )
            yield Token(TokenKind.END_TAG, pos, close + 1, name=name)
            pos = close + 1
        else:
            name, name_end = _scan_name(text, pos + 1)
            attributes, attr_end = _scan_attributes(text, name_end)
            if text.startswith("/>", attr_end):
                yield Token(
                    TokenKind.EMPTY_TAG, pos, attr_end + 2, name=name,
                    attributes=attributes,
                )
                pos = attr_end + 2
            elif attr_end < n and text[attr_end] == ">":
                yield Token(
                    TokenKind.START_TAG, pos, attr_end + 1, name=name,
                    attributes=attributes,
                )
                pos = attr_end + 1
            else:
                raise XMLSyntaxError(
                    f"malformed start tag for {name!r}", offset=pos
                )
