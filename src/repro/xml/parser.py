"""Offset-exact XML parser.

Builds the :class:`~repro.xml.model.XMLDocument` tree from the token stream
of :mod:`repro.xml.tokenizer`, checking well-formedness (balanced tags, a
single root element).

Every well-formed XML *segment* of the paper is parseable standalone with
this parser; the element records the element index stores — ``(tag, start,
end, level)`` in the segment's own coordinate space — come straight out of
the :class:`XMLElement` spans.
"""

from __future__ import annotations

from repro.errors import XMLSyntaxError
from repro.xml.model import XMLDocument, XMLElement
from repro.xml.tokenizer import Token, TokenKind, tokenize

__all__ = ["parse", "parse_fragment", "element_records", "is_well_formed"]


def parse(text: str) -> XMLDocument:
    """Parse ``text`` into an :class:`XMLDocument`.

    Requires exactly one root element; prolog material (XML declaration,
    DOCTYPE, comments, whitespace) may precede it and comments/whitespace may
    follow it.  Raises :class:`~repro.errors.XMLSyntaxError` otherwise.
    """
    root: XMLElement | None = None
    elements: list[XMLElement] = []
    stack: list[XMLElement] = []

    def open_element(token: Token) -> XMLElement:
        element = XMLElement(
            tag=token.name,
            start=token.start,
            end=-1,
            level=len(stack) + 1,
            attributes=token.attributes,
        )
        if stack:
            element.parent = stack[-1]
            stack[-1].children.append(element)
        elements.append(element)
        return element

    for token in tokenize(text):
        kind = token.kind
        if kind is TokenKind.START_TAG:
            if root is not None and not stack:
                raise XMLSyntaxError(
                    "content after the root element", offset=token.start
                )
            element = open_element(token)
            if root is None:
                root = element
            stack.append(element)
        elif kind is TokenKind.EMPTY_TAG:
            if root is not None and not stack:
                raise XMLSyntaxError(
                    "content after the root element", offset=token.start
                )
            element = open_element(token)
            element.end = token.end
            if root is None:
                root = element
        elif kind is TokenKind.END_TAG:
            if not stack:
                raise XMLSyntaxError(
                    f"unexpected end tag </{token.name}>", offset=token.start
                )
            element = stack.pop()
            if element.tag != token.name:
                raise XMLSyntaxError(
                    f"end tag </{token.name}> does not match <{element.tag}>",
                    offset=token.start,
                )
            element.end = token.end
        elif kind is TokenKind.TEXT:
            if not stack and text[token.start : token.end].strip():
                raise XMLSyntaxError(
                    "character data outside the root element",
                    offset=token.start,
                )
        # Comments, CDATA, PIs, declarations and DOCTYPE carry no structure.

    if stack:
        raise XMLSyntaxError(
            f"unclosed element <{stack[-1].tag}>", offset=stack[-1].start
        )
    if root is None:
        raise XMLSyntaxError("no root element found", offset=0)
    return XMLDocument(text, root, elements)


def parse_fragment(text: str) -> XMLDocument:
    """Parse a segment (well-formed fragment with one root element).

    Alias of :func:`parse`; exists so call sites distinguish "parsing a
    segment about to be inserted" from "parsing a whole document".
    """
    return parse(text)


def element_records(text: str) -> list[tuple[str, int, int, int]]:
    """Return ``(tag, start, end, level)`` for every element, document order.

    This is the exact shape the element index ingests when a segment is
    inserted: local positions in the segment's own coordinate space, with
    ``level`` starting at 1 for the segment root.
    """
    document = parse(text)
    return [(e.tag, e.start, e.end, e.level) for e in document.elements]


def is_well_formed(text: str) -> bool:
    """True when ``text`` parses as a well-formed fragment."""
    try:
        parse(text)
    except XMLSyntaxError:
        return False
    return True
