"""XML text construction helpers.

The workload generators build documents as lightweight ``Node`` trees and
serialize them to text; the escape helpers are shared with anything that
emits XML.  Serialization is deterministic (attribute order is insertion
order) so generated documents are reproducible byte-for-byte from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from io import StringIO

__all__ = ["Node", "escape_text", "escape_attribute", "serialize"]

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {**_TEXT_ESCAPES, '"': "&quot;"}


def escape_text(value: str) -> str:
    """Escape character data for inclusion between tags."""
    out = value
    for raw, escaped in _TEXT_ESCAPES.items():
        out = out.replace(raw, escaped)
    return out


def escape_attribute(value: str) -> str:
    """Escape a value for inclusion in a double-quoted attribute."""
    out = value
    for raw, escaped in _ATTR_ESCAPES.items():
        out = out.replace(raw, escaped)
    return out


@dataclass
class Node:
    """A build-side XML element: tag, attributes, interleaved content.

    ``content`` items are either ``str`` (character data, escaped on
    serialization) or child :class:`Node` instances.
    """

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    content: list["Node | str"] = field(default_factory=list)

    def child(self, tag: str, **attributes: str) -> "Node":
        """Append and return a new child element."""
        node = Node(tag, dict(attributes))
        self.content.append(node)
        return node

    def text(self, value: str) -> "Node":
        """Append character data; returns ``self`` for chaining."""
        self.content.append(value)
        return self

    def element_count(self) -> int:
        """Number of elements in this subtree (including ``self``)."""
        count = 1
        stack: list[Node | str] = list(self.content)
        while stack:
            item = stack.pop()
            if isinstance(item, Node):
                count += 1
                stack.extend(item.content)
        return count

    def to_xml(self) -> str:
        """Serialize this subtree to XML text."""
        return serialize(self)


def serialize(node: Node) -> str:
    """Serialize a :class:`Node` tree to compact XML text.

    Elements with no content become empty-element tags (``<a/>``), matching
    what the paper's "dummy elements" look like and keeping generated
    documents small.
    """
    buffer = StringIO()
    _write(node, buffer)
    return buffer.getvalue()


def _write(node: Node, buffer: StringIO) -> None:
    buffer.write("<")
    buffer.write(node.tag)
    for name, value in node.attributes.items():
        buffer.write(f' {name}="{escape_attribute(value)}"')
    if not node.content:
        buffer.write("/>")
        return
    buffer.write(">")
    for item in node.content:
        if isinstance(item, Node):
            _write(item, buffer)
        else:
            buffer.write(escape_text(item))
    buffer.write(f"</{node.tag}>")
