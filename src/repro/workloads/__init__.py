"""Workload generation: documents, segments and update streams.

- :mod:`repro.workloads.generator` — seeded random trees (IBM XML Generator
  substitute);
- :mod:`repro.workloads.xmark` — XMark-schema documents (XMark substitute);
- :mod:`repro.workloads.chopper` — chop a document into N segments with a
  balanced or nested ER-tree;
- :mod:`repro.workloads.join_mix` — super documents with a controlled
  cross-segment-join percentage;
- :mod:`repro.workloads.scenarios` — registration-form and DBLP-style
  update streams.
"""

from repro.workloads.chopper import InsertOp, apply_chop, chop, chop_text, choose_segment_roots
from repro.workloads.generator import (
    GeneratorConfig,
    generate_fragment,
    generate_tree,
    generate_uniform_fragment,
    tag_pool,
)
from repro.workloads.join_mix import (
    JoinMixConfig,
    JoinMixInfo,
    build_join_mix,
    sweep_configs,
)
from repro.workloads.scenarios import (
    dblp_article,
    dblp_stream,
    registration_form,
    registration_stream,
)
from repro.workloads.xmark import XMARK_QUERIES, XMarkConfig, generate_person, generate_site

__all__ = [
    "GeneratorConfig",
    "generate_tree",
    "generate_fragment",
    "generate_uniform_fragment",
    "tag_pool",
    "XMarkConfig",
    "generate_site",
    "generate_person",
    "XMARK_QUERIES",
    "InsertOp",
    "choose_segment_roots",
    "chop",
    "chop_text",
    "apply_chop",
    "JoinMixConfig",
    "JoinMixInfo",
    "build_join_mix",
    "sweep_configs",
    "registration_form",
    "registration_stream",
    "dblp_article",
    "dblp_stream",
]
