"""XMark-like document generation — the XMark benchmark substitute.

The paper's third experiment group runs queries Q1–Q5 over an XMark dataset
(100 MB, ~3M elements).  We cannot ship XMark data, so this module generates
documents following the XMark auction-site schema at a configurable scale:

    site
    ├── regions/africa..samerica/item*          (bulk)
    ├── categories/category*                    (bulk)
    ├── people/person*
    │     ├── name, emailaddress, phone?, address(street,city,country,zipcode)
    │     ├── profile(interest*, education?, gender?, business, age?)
    │     └── watches(watch*)
    └── open_auctions/open_auction*(bidder*, ...), closed_auctions/...

All tag containment relations the five queries touch — ``person//phone``,
``profile//interest``, ``watches//watch``, ``person//watch``,
``person//interest`` — have the same shape as in real XMark, so result
cardinalities scale the way the paper's Fig. 14 table does.

Generation is seeded and deterministic.  ``scale=1.0`` approximates real
XMark's proportions (2 550 persons per scale unit); the benchmarks run at
reduced scale since absolute dataset size is not the reproduced quantity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xml.serializer import Node

__all__ = ["XMarkConfig", "generate_site", "generate_person", "XMARK_QUERIES"]

#: The Fig. 14 query set: (query id, ancestor tag, descendant tag).
XMARK_QUERIES: list[tuple[str, str, str]] = [
    ("Q1", "person", "phone"),
    ("Q2", "profile", "interest"),
    ("Q3", "watches", "watch"),
    ("Q4", "person", "watch"),
    ("Q5", "person", "interest"),
]

_REGIONS = ["africa", "asia", "australia", "europe", "namerica", "samerica"]
_PERSONS_PER_SCALE = 2550
_ITEMS_PER_SCALE = 2175
_OPEN_AUCTIONS_PER_SCALE = 1200
_CLOSED_AUCTIONS_PER_SCALE = 975
_CATEGORIES_PER_SCALE = 100


@dataclass
class XMarkConfig:
    """Scale and distribution knobs for XMark-like generation.

    ``phone_probability`` etc. control per-person optional content;
    ``max_interests``/``max_watches`` bound the multi-valued children, whose
    counts draw uniformly from ``[0, max]``.
    """

    scale: float = 0.01
    seed: int = 7
    phone_probability: float = 0.8
    max_interests: int = 5
    max_watches: int = 8
    include_auctions: bool = True


def generate_person(rng: random.Random, index: int, config: XMarkConfig) -> Node:
    """One ``person`` element following the XMark person schema."""
    person = Node("person", {"id": f"person{index}"})
    person.child("name").text(f"Person {index}")
    person.child("emailaddress").text(f"mailto:person{index}@example.org")
    if rng.random() < config.phone_probability:
        person.child("phone").text(f"+{rng.randint(1, 99)} {rng.randint(1000000, 9999999)}")
    address = person.child("address")
    address.child("street").text(f"{rng.randint(1, 99)} Main St")
    address.child("city").text(f"City{rng.randint(0, 50)}")
    address.child("country").text("United States")
    address.child("zipcode").text(str(rng.randint(10000, 99999)))
    profile = person.child("profile", income=str(rng.randint(10000, 200000)))
    for i in range(rng.randint(0, config.max_interests)):
        profile.child("interest", category=f"category{rng.randint(0, 99)}")
    if rng.random() < 0.7:
        profile.child("education").text("Graduate School")
    if rng.random() < 0.9:
        profile.child("gender").text(rng.choice(["male", "female"]))
    profile.child("business").text(rng.choice(["Yes", "No"]))
    if rng.random() < 0.5:
        profile.child("age").text(str(rng.randint(18, 90)))
    watches = person.child("watches")
    for i in range(rng.randint(0, config.max_watches)):
        watches.child(
            "watch", open_auction=f"open_auction{rng.randint(0, 9999)}"
        )
    return person


def _generate_item(rng: random.Random, index: int) -> Node:
    item = Node("item", {"id": f"item{index}"})
    item.child("location").text(f"City{rng.randint(0, 50)}")
    item.child("quantity").text(str(rng.randint(1, 5)))
    item.child("name").text(f"Item {index}")
    payment = item.child("payment")
    payment.text(rng.choice(["Creditcard", "Cash", "Money order"]))
    description = item.child("description")
    description.child("text").text("great condition")
    return item


def _generate_open_auction(rng: random.Random, index: int) -> Node:
    auction = Node("open_auction", {"id": f"open_auction{index}"})
    auction.child("initial").text(f"{rng.uniform(1, 100):.2f}")
    for _ in range(rng.randint(0, 5)):
        bidder = auction.child("bidder")
        bidder.child("date").text("01/01/2005")
        bidder.child("increase").text(f"{rng.uniform(1, 20):.2f}")
    auction.child("current").text(f"{rng.uniform(1, 500):.2f}")
    auction.child("quantity").text("1")
    auction.child("itemref", item=f"item{rng.randint(0, 9999)}")
    auction.child("seller", person=f"person{rng.randint(0, 9999)}")
    return auction


def _generate_closed_auction(rng: random.Random, index: int) -> Node:
    auction = Node("closed_auction")
    auction.child("seller", person=f"person{rng.randint(0, 9999)}")
    auction.child("buyer", person=f"person{rng.randint(0, 9999)}")
    auction.child("itemref", item=f"item{rng.randint(0, 9999)}")
    auction.child("price").text(f"{rng.uniform(1, 500):.2f}")
    auction.child("date").text("01/01/2005")
    auction.child("quantity").text("1")
    return auction


def generate_site(config: XMarkConfig | None = None) -> Node:
    """Generate a full XMark-like ``site`` document tree."""
    if config is None:
        config = XMarkConfig()
    rng = random.Random(config.seed)
    n_persons = max(1, round(_PERSONS_PER_SCALE * config.scale))
    n_items = max(1, round(_ITEMS_PER_SCALE * config.scale))
    n_open = max(1, round(_OPEN_AUCTIONS_PER_SCALE * config.scale))
    n_closed = max(1, round(_CLOSED_AUCTIONS_PER_SCALE * config.scale))
    n_categories = max(1, round(_CATEGORIES_PER_SCALE * config.scale))

    site = Node("site")
    regions = site.child("regions")
    for region_index in range(n_items):
        region = _REGIONS[region_index % len(_REGIONS)]
        # Group items under region elements lazily: find-or-create.
        target = next(
            (c for c in regions.content if isinstance(c, Node) and c.tag == region),
            None,
        )
        if target is None:
            target = regions.child(region)
        target.content.append(_generate_item(rng, region_index))
    categories = site.child("categories")
    for i in range(n_categories):
        category = categories.child("category", id=f"category{i}")
        category.child("name").text(f"Category {i}")
    people = site.child("people")
    for i in range(n_persons):
        people.content.append(generate_person(rng, i, config))
    if config.include_auctions:
        open_auctions = site.child("open_auctions")
        for i in range(n_open):
            open_auctions.content.append(_generate_open_auction(rng, i))
        closed_auctions = site.child("closed_auctions")
        for i in range(n_closed):
            closed_auctions.content.append(_generate_closed_auction(rng, i))
    return site
