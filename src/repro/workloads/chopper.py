"""Chopping documents into segments (Section 5.1's setup step).

The paper builds its experimental databases by chopping a document "into
many small segments and inserting these segments into an initially dummy XML
document, while maintaining the validity of the super document".  This
module implements that:

- :func:`choose_segment_roots` picks which elements become segment roots,
  under a *shape* policy — ``"nested"`` (a containment chain: the worst-case
  ER-tree) or ``"balanced"`` (segment roots spread breadth-first: a bushy,
  shallow ER-tree);
- :func:`chop` turns a document + chosen roots into an ordered list of
  :class:`InsertOp` (fragment text, insertion position *at execution time*);
- :func:`apply_chop` replays the ops against a
  :class:`~repro.core.database.LazyXMLDatabase`, which then contains exactly
  the original document, split over the requested number of segments.

The position bookkeeping: ops execute in document pre-order of the segment
roots, so when an op runs, everything already inserted is exactly the
material that precedes or encloses it; the insertion offset is the count of
already-inserted characters originally located before the fragment.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

from repro.core.database import LazyXMLDatabase
from repro.errors import UpdateError
from repro.xml.model import XMLDocument, XMLElement
from repro.xml.parser import parse

__all__ = [
    "InsertOp",
    "choose_segment_roots",
    "chop",
    "chop_records",
    "apply_chop",
    "chop_text",
]

_SHAPES = ("nested", "balanced")


@dataclass
class InsertOp:
    """One segment insertion: ``fragment`` goes in at ``position``.

    ``position`` is valid at the moment the op executes, assuming all
    preceding ops in the list have executed (in order).
    """

    fragment: str
    position: int


def choose_segment_roots(
    document: XMLDocument,
    n_segments: int,
    shape: str = "balanced",
    rng: random.Random | None = None,
) -> list[XMLElement]:
    """Pick ``n_segments`` elements to serve as segment roots.

    The document root is always the first.  ``"balanced"`` walks the tree
    breadth-first, spreading roots across subtrees so segment containment
    stays shallow; ``"nested"`` walks down a deepest path so every segment
    contains the next (the paper's worst case).  ``rng`` adds tie-breaking
    shuffling for balanced picks (deterministic when omitted).
    """
    if shape not in _SHAPES:
        raise UpdateError(f"shape must be one of {_SHAPES}, got {shape!r}")
    if n_segments < 1:
        raise UpdateError(f"n_segments must be >= 1, got {n_segments}")
    root = document.root
    roots = [root]
    if shape == "nested":
        # Follow the path to the deepest leaf: segment nesting is bounded by
        # element nesting, so the longest chain lives on the tallest path.
        height: dict[XMLElement, int] = {}
        for element in reversed(document.elements):
            height[element] = 1 + max(
                (height[c] for c in element.children), default=0
            )
        node = root
        while len(roots) < n_segments and node.children:
            node = max(node.children, key=lambda c: height[c])
            roots.append(node)
    else:
        queue = deque(root.children)
        while queue and len(roots) < n_segments:
            batch = list(queue)
            queue.clear()
            if rng is not None:
                rng.shuffle(batch)
            for element in batch:
                if len(roots) >= n_segments:
                    break
                roots.append(element)
                queue.extend(element.children)
    if len(roots) < n_segments:
        raise UpdateError(
            f"document too small to chop into {n_segments} segments "
            f"(managed {len(roots)} under shape {shape!r})"
        )
    return roots


def chop(document: XMLDocument, roots: list[XMLElement]) -> list[InsertOp]:
    """Compute the insertion ops recreating ``document`` from ``roots``.

    Each segment's fragment is its root element's text minus the spans of
    segment roots nested inside it.  Ops come out in document pre-order of
    the roots (ancestors before descendants, left before right), with each
    op's position computed against the text state its predecessors leave
    behind.
    """
    text = document.text
    root_set = set(roots)
    if document.root not in root_set:
        raise UpdateError("the document root must be a segment root")
    ordered = [e for e in document.elements if e in root_set]

    # Direct sub-roots of each segment root: nearest descendant roots.
    sub_roots: dict[XMLElement, list[XMLElement]] = {r: [] for r in ordered}
    for element in ordered:
        if element is document.root:
            continue
        anc = element.parent
        while anc is not None and anc not in root_set:
            anc = anc.parent
        assert anc is not None  # the document root is always a segment root
        sub_roots[anc].append(element)

    # Each op's own character intervals (root span minus nested root spans).
    ops: list[InsertOp] = []
    inserted_intervals: list[tuple[int, int]] = []
    for element in ordered:
        gaps = sorted((s.start, s.end) for s in sub_roots[element])
        pieces: list[str] = []
        own_intervals: list[tuple[int, int]] = []
        cursor = element.start
        for gap_start, gap_end in gaps:
            if cursor < gap_start:
                pieces.append(text[cursor:gap_start])
                own_intervals.append((cursor, gap_start))
            cursor = gap_end
        if cursor < element.end:
            pieces.append(text[cursor : element.end])
            own_intervals.append((cursor, element.end))
        fragment = "".join(pieces)
        position = sum(
            min(end, element.start) - start
            for start, end in inserted_intervals
            if start < element.start
        )
        ops.append(InsertOp(fragment=fragment, position=position))
        inserted_intervals.extend(own_intervals)
    return ops


def chop_records(ops: list[InsertOp]) -> list[dict]:
    """Insertion ops as journal-dialect records (``apply_batch`` input)."""
    return [
        {"op": "insert", "fragment": op.fragment, "position": op.position}
        for op in ops
    ]


def apply_chop(db: LazyXMLDatabase, ops: list[InsertOp]) -> list[int]:
    """Execute insertion ops as **one batch**; return the created sids.

    Every bulk load (XMark/DBLP chops, the CLI ``load`` command, bench
    harnesses) funnels through here, so durable targets pay one journal
    fsync for the whole document and services invalidate read-path epochs
    once instead of once per segment.
    """
    if not ops:
        return []
    receipts = db.apply_batch(chop_records(ops))
    return [receipt.sid for receipt in receipts]


def chop_text(
    text: str,
    n_segments: int,
    shape: str = "balanced",
    *,
    db: LazyXMLDatabase | None = None,
    seed: int | None = None,
) -> tuple[LazyXMLDatabase, list[int]]:
    """Parse, chop and load ``text`` into a (new or given) database.

    Returns ``(db, sids)``.  The resulting database's text equals ``text``
    exactly, spread over ``n_segments`` segments shaped per ``shape``.
    """
    document = parse(text)
    rng = random.Random(seed) if seed is not None else None
    roots = choose_segment_roots(document, n_segments, shape, rng)
    ops = chop(document, roots)
    if db is None:
        db = LazyXMLDatabase()
    sids = apply_chop(db, ops)
    return db, sids
