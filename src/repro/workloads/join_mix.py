"""Workloads with a controlled cross-segment-join percentage (Fig. 12 knob).

The paper's first query experiment fixes the number of segments and the
number of A- and D-elements, then sweeps the *percentage of cross-segment
joins*.  This module constructs such super documents directly, segment by
segment, with exactly predictable pair counts.

Geometry
--------
Segments form a chain (``"nested"``) or a complete b-ary tree
(``"balanced"``).  Each non-root segment carries one ``<d/>`` element (a
cross-join target).  A child segment's insertion point in its parent is
either *wrapped* in ``wrappers`` nested ``<a>`` elements or left bare:
wrapping child ``c`` contributes ``wrappers × |subtree(c)|`` cross pairs
(the wrapper elements contain every D in the subtree below the insertion
point).  In-segment pairs come from flat ``<a><d/></a>`` blocks placed in
the *root* segment only, where no wrapper can see them — one pair each, so
cross and in-segment counts are fully decoupled.

Free ``<a/>`` and ``<d/>`` elements in the root pad |A| and |D| to fixed
targets across a sweep.  :func:`sweep_configs` picks wrapped-children
subsets greedily so the realized cross percentage tracks the requested one
while the *total* pair count stays constant.

The builder returns a :class:`JoinMixInfo` with the predicted counts, which
the test suite verifies against actual join output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.database import LazyXMLDatabase
from repro.errors import UpdateError

__all__ = ["JoinMixConfig", "JoinMixInfo", "build_join_mix", "sweep_configs"]

_SHAPES = ("nested", "balanced")

TAG_ROOT = "seg"
TAG_A = "a"
TAG_D = "d"
TAG_FILL = "f"


@dataclass
class JoinMixConfig:
    """Shape and content knobs for the mix builder."""

    n_segments: int = 50
    shape: str = "nested"  #: "nested" chain or "balanced" b-ary tree
    branching: int = 4  #: children per segment in the balanced shape
    wrappers: int = 1  #: nested A-elements around each *wrapped* insertion point
    wrapped_children: frozenset[int] | None = None  #: segment indices whose
    #: insertion point is wrapped; ``None`` wraps every child
    cross_d_per_segment: int = 1  #: cross-target <d/> per non-root segment
    in_blocks_per_segment: int = 0  #: <a><d/></a> blocks in *every* segment
    in_blocks_by_segment: dict[int, int] | None = None  #: per-segment
    #: in-block counts added on top of ``in_blocks_per_segment``
    in_blocks_root: int = 2  #: additional <a><d/></a> blocks in the root
    free_a_root: int = 0  #: pair-free <a/> padding (root)
    free_d_root: int = 0  #: pair-free <d/> padding (root)
    pad_a_elements: int = 0  #: <a/> padding in a dedicated sibling segment
    pad_d_elements: int = 0  #: <d/> padding in a dedicated sibling segment
    filler_per_segment: int = 0  #: neutral <f/> padding per segment

    def is_wrapped(self, child_index: int) -> bool:
        return self.wrapped_children is None or child_index in self.wrapped_children

    def in_blocks_for(self, segment_index: int) -> int:
        extra = (self.in_blocks_by_segment or {}).get(segment_index, 0)
        base = self.in_blocks_per_segment + extra
        if segment_index == 0:
            base += self.in_blocks_root
        return base


@dataclass
class JoinMixInfo:
    """What the builder created and what a correct A//D join must return."""

    sids: list[int] = field(default_factory=list)
    expected_cross: int = 0
    expected_in: int = 0
    a_elements: int = 0
    d_elements: int = 0

    @property
    def expected_total(self) -> int:
        return self.expected_cross + self.expected_in

    @property
    def cross_fraction(self) -> float:
        total = self.expected_total
        return self.expected_cross / total if total else 0.0


def parent_indices(n_segments: int, shape: str, branching: int) -> list[int]:
    """Parent index for each segment (−1 for the root)."""
    if shape == "nested":
        return [-1] + list(range(n_segments - 1))
    return [-1] + [(i - 1) // branching for i in range(1, n_segments)]


def subtree_sizes(parents: list[int]) -> list[int]:
    """Number of segments in each segment's subtree (itself included)."""
    sizes = [1] * len(parents)
    for i in range(len(parents) - 1, 0, -1):
        sizes[parents[i]] += sizes[i]
    return sizes


def _segment_fragment(
    config: JoinMixConfig, segment_index: int, child_indices: list[int]
) -> tuple[str, dict[int, int]]:
    """Build one segment's text; return it plus each child's anchor offset.

    The anchor offset is the local position where that child's segment must
    be inserted (inside the innermost wrapper A when wrapped, directly under
    the segment root otherwise, always just before a ``<f/>`` anchor).
    """
    parts: list[str] = [f"<{TAG_ROOT}>"]
    offset = len(parts[0])
    anchors: dict[int, int] = {}
    anchor = f"<{TAG_FILL}/>"
    for child in child_indices:
        wraps = config.wrappers if config.is_wrapped(child) else 0
        open_run = f"<{TAG_A}>" * wraps
        close_run = f"</{TAG_A}>" * wraps
        parts.append(open_run)
        anchors[child] = offset + len(open_run)
        parts.append(anchor)
        parts.append(close_run)
        offset += len(open_run) + len(anchor) + len(close_run)
    is_root = segment_index == 0
    blocks: list[str] = []
    for _ in range(config.cross_d_per_segment if not is_root else 0):
        blocks.append(f"<{TAG_D}/>")
    for _ in range(config.in_blocks_for(segment_index)):
        blocks.append(f"<{TAG_A}><{TAG_D}/></{TAG_A}>")
    if is_root:
        for _ in range(config.free_a_root):
            blocks.append(f"<{TAG_A}/>")
        for _ in range(config.free_d_root):
            blocks.append(f"<{TAG_D}/>")
    for _ in range(config.filler_per_segment):
        blocks.append(f"<{TAG_FILL}/>")
    parts.extend(blocks)
    parts.append(f"</{TAG_ROOT}>")
    return "".join(parts), anchors


def build_join_mix(
    db: LazyXMLDatabase, config: JoinMixConfig | None = None
) -> JoinMixInfo:
    """Populate ``db`` with the configured workload; return expected counts.

    ``db`` must be empty.  Works in both LD and LS modes (insertion
    positions come from the ER-tree, which both maintain).
    """
    if config is None:
        config = JoinMixConfig()
    if config.shape not in _SHAPES:
        raise UpdateError(f"shape must be one of {_SHAPES}, got {config.shape!r}")
    if db.segment_count != 0:
        raise UpdateError("build_join_mix requires an empty database")
    parents = parent_indices(config.n_segments, config.shape, config.branching)
    children_of: dict[int, list[int]] = {}
    for child, parent in enumerate(parents):
        if parent >= 0:
            children_of.setdefault(parent, []).append(child)

    # Dedicated pad segments: they pin |A| and |D| without ever being read
    # by Lazy-Join — the <d/> pad comes first in document order (skipped on
    # an empty stack), the <a/> pad contains no descendant segment (skipped
    # at the push test).  STD, which scans whole element lists, reads both.
    pad_sids: list[int] = []
    if config.pad_d_elements:
        body = f"<{TAG_D}/>" * config.pad_d_elements
        pad_sids.append(
            db.insert(f"<{TAG_ROOT}>{body}</{TAG_ROOT}>", db.document_length).sid
        )
    if config.pad_a_elements:
        body = f"<{TAG_A}/>" * config.pad_a_elements
        pad_sids.append(
            db.insert(f"<{TAG_ROOT}>{body}</{TAG_ROOT}>", db.document_length).sid
        )

    sids: list[int] = []
    anchor_maps: list[dict[int, int]] = []
    for i in range(config.n_segments):
        fragment, anchors = _segment_fragment(config, i, children_of.get(i, []))
        anchor_maps.append(anchors)
        if i == 0:
            position = db.document_length
        else:
            parent_node = db.log.node(sids[parents[i]])
            position = parent_node.to_global(anchor_maps[parents[i]][i])
        sids.append(db.insert(fragment, position).sid)

    # Predicted counts from the model.  Every D inside a non-root segment
    # (cross targets *and* in-block D's) lies under that segment's wrapped
    # ancestors' wrapper A's, so the subtree propagation counts them all;
    # root-level D's are under no wrapper and never contribute cross pairs.
    d_own = [
        config.cross_d_per_segment + config.in_blocks_for(i)
        for i in range(config.n_segments)
    ]
    d_own[0] = config.in_blocks_for(0) + config.free_d_root
    d_subtree = list(d_own)
    for i in range(config.n_segments - 1, 0, -1):
        d_subtree[parents[i]] += d_subtree[i]
    expected_cross = sum(
        config.wrappers * d_subtree[i]
        for i in range(1, config.n_segments)
        if config.is_wrapped(i)
    )
    block_count = sum(
        config.in_blocks_for(i) for i in range(config.n_segments)
    )
    expected_in = block_count
    wrapper_count = sum(
        config.wrappers
        for i in range(1, config.n_segments)
        if config.is_wrapped(i)
    )
    a_elements = (
        wrapper_count + block_count + config.free_a_root + config.pad_a_elements
    )
    d_elements = (
        (config.n_segments - 1) * config.cross_d_per_segment
        + block_count
        + config.free_d_root
        + config.pad_d_elements
    )
    return JoinMixInfo(
        sids=sids,
        expected_cross=expected_cross,
        expected_in=expected_in,
        a_elements=a_elements,
        d_elements=d_elements,
    )


def sweep_configs(
    n_segments: int,
    shape: str,
    fractions: list[float],
    *,
    branching: int = 4,
    wrappers: int = 1,
) -> list[JoinMixConfig]:
    """Configs hitting the requested cross-join fractions at constant totals.

    Every config produces (as near as subset granularity allows) the same
    total pair count ``W = Σ non-root subtree sizes`` and the same |A| and
    |D|; only the cross/in split moves.  Greedy largest-first subset
    selection picks which children's insertion points are wrapped.
    """
    parents = parent_indices(n_segments, shape, branching)
    sizes = subtree_sizes(parents)
    child_sizes = sorted(
        ((sizes[i], i) for i in range(1, n_segments)), reverse=True
    )
    # Strategy: wrap the *deepest* segments (chain suffix / deepest leaves)
    # and place in-segment blocks only in segments with no wrapped ancestor.
    # Wrapped segments then carry a bare <d/> each (pure cross targets), and
    # raising the fraction converts A+D segments into D-only segments that
    # Lazy-Join skips outright — the mechanism behind the paper's Fig. 12
    # trend.  Cross counts stay exactly predictable (subtree sums over the
    # wrapped suffix); in-segment blocks spread evenly over the unwrapped
    # prefix; free elements in the root pin |A| and |D| across the sweep.
    depths: list[int] = [0] * n_segments
    for i in range(1, n_segments):
        depths[i] = depths[parents[i]] + 1
    by_depth = sorted(range(1, n_segments), key=lambda i: -depths[i])
    total_pairs = wrappers * sum(size for size, _ in child_sizes)
    sizes = subtree_sizes(parents)
    max_wrapper_elements = wrappers * (n_segments - 1)
    configs: list[JoinMixConfig] = []
    for fraction in fractions:
        target = round(fraction * total_pairs)
        wrapped: set[int] = set()
        achieved = 0
        for index in by_depth:
            # Wrapping deepest-first keeps every wrapped subtree free of
            # in-segment blocks (blocks go strictly above the frontier).
            gain = wrappers * sizes[index]
            if achieved + gain <= target:
                wrapped.add(index)
                achieved += gain
        in_needed = total_pairs - achieved
        # Hosts for in-blocks: segments none of whose ancestors are wrapped
        # (the root plus the unwrapped prefix above the wrapped frontier).
        hosts = []
        for i in range(n_segments):
            node, clean = i, True
            while node != -1:
                if node in wrapped:
                    clean = False
                    break
                node = parents[node]
            if clean:
                hosts.append(i)
        blocks: dict[int, int] = {}
        for offset in range(in_needed):
            host = hosts[offset % len(hosts)]
            blocks[host] = blocks.get(host, 0) + 1
        wrapper_elements = wrappers * len(wrapped)
        configs.append(
            JoinMixConfig(
                n_segments=n_segments,
                shape=shape,
                branching=branching,
                wrappers=wrappers,
                wrapped_children=frozenset(wrapped),
                cross_d_per_segment=1,
                in_blocks_per_segment=0,
                in_blocks_by_segment=blocks,
                in_blocks_root=0,
                pad_a_elements=(max_wrapper_elements - wrapper_elements)
                + achieved,
                pad_d_elements=achieved,
            )
        )
    return configs
