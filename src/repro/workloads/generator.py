"""Synthetic XML generation — the IBM XML Generator substitute.

The paper uses the IBM generator only as a source of documents with
controllable characteristics (segment size, element counts, tag variety,
nesting).  This module provides a seeded random-tree generator exposing the
same knobs, producing :class:`~repro.xml.serializer.Node` trees or XML text
directly.

Determinism: every function takes either a seed or a ``random.Random``; the
same seed always yields byte-identical XML.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field

from repro.xml.serializer import Node

__all__ = ["GeneratorConfig", "generate_tree", "generate_fragment", "tag_pool"]


def tag_pool(count: int, prefix: str = "t") -> list[str]:
    """A deterministic pool of ``count`` distinct tag names."""
    return [f"{prefix}{i}" for i in range(count)]


@dataclass
class GeneratorConfig:
    """Knobs for random-tree generation.

    ``fanout`` bounds children per element (inclusive range); depth is
    bounded by ``max_depth``; ``text_probability`` adds small character-data
    payloads; ``target_elements`` (when set) stops growth once the tree
    reaches that size, giving precise control over segment element counts.
    """

    tags: list[str] = field(default_factory=lambda: tag_pool(8))
    max_depth: int = 5
    fanout: tuple[int, int] = (1, 4)
    text_probability: float = 0.2
    target_elements: int | None = None
    seed: int = 0


def generate_tree(config: GeneratorConfig, rng: random.Random | None = None) -> Node:
    """Generate a random element tree honoring ``config``.

    The root tag is ``config.tags[0]``; descendants draw uniformly from the
    pool.  With ``target_elements`` set, the tree grows breadth-first to
    exactly that element count (subject to ``max_depth``, which may cap it).
    """
    if rng is None:
        rng = random.Random(config.seed)
    root = Node(config.tags[0])
    if config.target_elements is not None:
        _grow_to_target(root, config, rng)
    else:
        _grow_random(root, config, rng, depth=1)
    return root


def _grow_random(node: Node, config: GeneratorConfig, rng: random.Random, depth: int) -> None:
    if depth >= config.max_depth:
        return
    lo, hi = config.fanout
    for _ in range(rng.randint(lo, hi)):
        child = node.child(rng.choice(config.tags))
        if rng.random() < config.text_probability:
            child.text(_random_text(rng))
        _grow_random(child, config, rng, depth + 1)


def _grow_to_target(root: Node, config: GeneratorConfig, rng: random.Random) -> None:
    target = config.target_elements
    assert target is not None
    count = 1
    frontier: list[tuple[Node, int]] = [(root, 1)]
    while count < target and frontier:
        index = rng.randrange(len(frontier))
        node, depth = frontier[index]
        if depth >= config.max_depth:
            frontier.pop(index)
            continue
        child = node.child(rng.choice(config.tags))
        if rng.random() < config.text_probability:
            child.text(_random_text(rng))
        count += 1
        frontier.append((child, depth + 1))
    # Note: when max_depth prunes the whole frontier the tree may stay
    # smaller than the target; callers needing exact counts use a depth
    # bound large enough for their target.


def _random_text(rng: random.Random, length: int = 8) -> str:
    return "".join(rng.choice(string.ascii_lowercase) for _ in range(length))


def generate_fragment(
    n_elements: int,
    tags: list[str] | None = None,
    *,
    seed: int = 0,
    max_depth: int = 12,
    rng: random.Random | None = None,
) -> str:
    """A well-formed XML fragment with exactly ``n_elements`` elements.

    Convenience wrapper over :func:`generate_tree` used throughout the
    benchmarks to make segments of precise sizes.
    """
    if n_elements < 1:
        raise ValueError(f"n_elements must be >= 1, got {n_elements}")
    config = GeneratorConfig(
        tags=tags or tag_pool(8),
        max_depth=max_depth,
        target_elements=n_elements,
        text_probability=0.0,
        seed=seed,
    )
    return generate_tree(config, rng).to_xml()


def generate_uniform_fragment(
    n_elements: int, tags: list[str], shape: str = "wide"
) -> str:
    """A deterministic fragment with exact element and tag-name counts.

    Guarantees every tag in ``tags`` appears (round-robin assignment) as
    long as ``n_elements >= len(tags)`` — the control the Fig. 17(b)
    experiment needs when sweeping "number of distinct tag names per
    segment".  ``shape`` is ``"wide"`` (root plus a flat run of children) or
    ``"deep"`` (a single chain).
    """
    if n_elements < 1:
        raise ValueError(f"n_elements must be >= 1, got {n_elements}")
    if not tags:
        raise ValueError("tags must be non-empty")
    if shape not in ("wide", "deep"):
        raise ValueError(f"shape must be 'wide' or 'deep', got {shape!r}")
    root = Node(tags[0])
    node = root
    for i in range(1, n_elements):
        child = node.child(tags[i % len(tags)])
        if shape == "deep":
            node = child
    return root.to_xml()
