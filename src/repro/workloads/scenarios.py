"""Realistic update streams — the paper's motivating scenarios (Section 1).

Two generators of *segment streams*, each yielding well-formed fragments the
way the paper's introduction describes updates arriving in the real world:

- :func:`registration_stream` — an online registration system: each submitted
  form becomes one 20–30 element XML document appended to the database;
- :func:`dblp_stream` — a bibliography server: daily batches of new articles
  and proceedings entries.

Both are seeded and deterministic; the examples and several integration
tests replay them against a :class:`~repro.core.database.LazyXMLDatabase`.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.xml.serializer import Node

__all__ = ["registration_stream", "dblp_stream", "registration_form", "dblp_article"]

_OCCUPATIONS = ["engineer", "teacher", "researcher", "student", "analyst"]
_COUNTRIES = ["Italy", "Singapore", "China", "USA", "Germany", "Japan"]
_VENUES = ["SIGMOD", "VLDB", "ICDE", "EDBT", "CIKM"]


def registration_form(rng: random.Random, index: int) -> str:
    """One registration-form segment (~20–30 elements)."""
    form = Node("registration", {"id": f"reg{index}"})
    user = form.child("user")
    user.child("identification").text(f"U{index:06d}")
    name = user.child("name")
    name.child("first").text(f"First{index}")
    name.child("last").text(f"Last{index}")
    user.child("occupation").text(rng.choice(_OCCUPATIONS))
    contact = form.child("contact")
    contact.child("email").text(f"user{index}@example.org")
    if rng.random() < 0.6:
        contact.child("phone").text(f"+{rng.randint(1, 99)}-{rng.randint(100, 999)}")
    address = contact.child("address")
    address.child("street").text(f"{rng.randint(1, 200)} Example Rd")
    address.child("city").text(f"City{rng.randint(0, 40)}")
    address.child("country").text(rng.choice(_COUNTRIES))
    preferences = form.child("preferences")
    for i in range(rng.randint(1, 5)):
        preferences.child("interest", topic=f"topic{rng.randint(0, 20)}")
    if rng.random() < 0.5:
        preferences.child("newsletter").text("yes")
    meta = form.child("metadata")
    meta.child("submitted").text("2005-06-14")
    meta.child("source").text("web")
    return form.to_xml()


def registration_stream(count: int, seed: int = 11) -> Iterator[str]:
    """Yield ``count`` registration-form segments."""
    rng = random.Random(seed)
    for index in range(count):
        yield registration_form(rng, index)


def dblp_article(rng: random.Random, index: int) -> str:
    """One bibliography entry segment in DBLP style."""
    kind = rng.choice(["article", "inproceedings"])
    entry = Node(kind, {"key": f"conf/x/{index}"})
    for i in range(rng.randint(1, 4)):
        entry.child("author").text(f"Author {index}-{i}")
    entry.child("title").text(f"On Topic Number {index}")
    if kind == "article":
        entry.child("journal").text("Journal of Examples")
        entry.child("volume").text(str(rng.randint(1, 40)))
    else:
        entry.child("booktitle").text(rng.choice(_VENUES))
    entry.child("year").text(str(rng.randint(1995, 2005)))
    entry.child("pages").text(f"{rng.randint(1, 400)}-{rng.randint(401, 800)}")
    if rng.random() < 0.4:
        entry.child("ee").text(f"db/conf/x/{index}.html")
    return entry.to_xml()


def dblp_stream(count: int, seed: int = 23) -> Iterator[str]:
    """Yield ``count`` bibliography-entry segments (the DBLP batch case)."""
    rng = random.Random(seed)
    for index in range(count):
        yield dblp_article(rng, index)
