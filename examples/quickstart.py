"""Quickstart: the lazy XML database in five minutes.

Creates a database, performs text-level inserts and removals, runs
structural joins, and shows the laziness invariant in action: element index
keys never change even as their global positions shift.

Run:  python examples/quickstart.py
"""

from repro import JoinStatistics, LazyXMLDatabase


def main() -> None:
    db = LazyXMLDatabase()  # LD mode: update log maintained on every update

    # 1. Insert a document. The whole database is one "super document";
    #    every insert adds a well-formed XML segment at a character offset.
    receipt = db.insert("<library><shelf><book><title/></book></shelf></library>")
    print("inserted segment", receipt.sid, "path", receipt.path)
    print("document:", db.text)

    # 2. Insert another segment *inside* the existing one. Only the text
    #    offset matters — exactly the paper's text-editing model.
    position = db.text.index("<book>")
    db.insert("<book><title/><author/></book>", position)
    print("after nested insert:", db.text)

    # 3. Structural join: all shelf//title pairs, straight off the update
    #    log and element index (Lazy-Join, Fig. 9 of the paper).
    stats = JoinStatistics()
    pairs = db.structural_join("shelf", "title", stats=stats)
    print(f"shelf//title -> {len(pairs)} pairs "
          f"({stats.cross_pairs} cross-segment, {stats.in_segment_pairs} in-segment)")
    for anc, desc in pairs:
        print("   ancestor", db.global_span(anc), "descendant", db.global_span(desc))

    # 4. The laziness invariant: the <title/> of segment 1 keeps its local
    #    label forever, while its *global* position is derived on demand.
    tid_title = db.log.tags.tid_of("title")
    record = db.index.elements_list(tid_title, 1)[0]
    print("segment-1 title local label:", (record.sid, record.start, record.end))
    print("derived global span:", db.global_span(record))
    db.insert("<pamphlet/>", db.text.index("<shelf>"))  # shifts everything after
    print("same local label:", (record.sid, record.start, record.end))
    print("new global span:  ", db.global_span(record))

    # 5. Removal is also just (position, length).
    start = db.text.index("<pamphlet/>")
    outcome = db.remove(start, len("<pamphlet/>"))
    print("removed", outcome.elements_removed, "element(s); document:", db.text)

    # 6. Compare algorithms: Lazy-Join vs Stack-Tree-Desc over derived
    #    global labels — identical answers.
    lazy = {(db.global_span(a), db.global_span(d))
            for a, d in db.structural_join("library", "title")}
    std = {(db.global_span(a), db.global_span(d))
           for a, d in db.structural_join("library", "title", algorithm="std")}
    assert lazy == std
    print("lazy == std on library//title:", len(lazy), "pairs")


if __name__ == "__main__":
    main()
