"""The paper's online-registration scenario (Section 1), end to end.

Every submitted form becomes one XML segment appended to the database —
20–30 elements at a time, exactly the batch-update pattern the lazy approach
targets.  The script streams registrations in, interleaves queries,
processes a few cancellations, and prints update-log statistics along the
way.

Run:  python examples/registration_system.py [n_forms]
"""

import sys
import time

from repro import LazyXMLDatabase
from repro.workloads.scenarios import registration_stream


def main(n_forms: int = 200) -> None:
    db = LazyXMLDatabase(keep_text=False)  # big stream: skip the text mirror

    print(f"accepting {n_forms} registration forms ...")
    started = time.perf_counter()
    sids = []
    for fragment in registration_stream(n_forms):
        sids.append(db.insert(fragment).sid)
    elapsed = time.perf_counter() - started
    print(f"  {n_forms} segments / {db.element_count} elements "
          f"in {elapsed * 1e3:.1f} ms "
          f"({elapsed / n_forms * 1e6:.1f} µs per form)")

    stats = db.stats()
    print(f"  update log: SB-tree {stats.sbtree_bytes / 1024:.1f} KB + "
          f"tag-list {stats.taglist_bytes / 1024:.1f} KB "
          f"= {stats.total_bytes / 1024:.1f} KB in memory")

    # Marketing wants to know who registered interests.
    started = time.perf_counter()
    pairs = db.structural_join("registration", "interest")
    print(f"registration//interest: {len(pairs)} pairs "
          f"in {(time.perf_counter() - started) * 1e3:.2f} ms")

    # Direct-child query: users and their occupations.
    pairs = db.structural_join("user", "occupation", axis="child")
    print(f"user/occupation: {len(pairs)} pairs")

    # A few users cancel: remove their whole form segments. No surviving
    # element label is touched.
    cancelled = sids[10:20]
    started = time.perf_counter()
    removed_elements = sum(db.remove_segment(sid).elements_removed for sid in cancelled)
    print(f"cancelled {len(cancelled)} registrations "
          f"({removed_elements} element records) "
          f"in {(time.perf_counter() - started) * 1e3:.2f} ms")

    pairs = db.structural_join("registration", "interest")
    print(f"registration//interest after cancellations: {len(pairs)} pairs")
    print(f"database now holds {db.segment_count} segments, "
          f"{db.element_count} elements, {db.document_length} characters")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
