"""The paper's DBLP scenario: daily batch updates in LS (lazy static) mode.

A bibliography server receives batches of new entries during the day and
answers queries at night.  LS mode makes updates as cheap as possible —
only the ER-tree is maintained; tag-list sorting and the SB-tree build are
deferred into one ``prepare_for_query()`` call before the query window.

Run:  python examples/dblp_batch.py [n_days] [entries_per_day]
"""

import sys
import time

from repro import LazyXMLDatabase
from repro.workloads.scenarios import dblp_stream


def main(n_days: int = 5, entries_per_day: int = 80) -> None:
    db = LazyXMLDatabase(mode="static", keep_text=False)

    for day in range(n_days):
        # Daytime: entries stream in; nothing but the ER-tree is maintained.
        started = time.perf_counter()
        for entry in dblp_stream(entries_per_day, seed=1000 + day):
            db.insert(entry)
        update_ms = (time.perf_counter() - started) * 1e3

        # Nightfall: make the log query-ready, then answer queries.
        started = time.perf_counter()
        db.prepare_for_query()
        prepare_ms = (time.perf_counter() - started) * 1e3

        started = time.perf_counter()
        by_author = db.structural_join("article", "author")
        in_proc = db.structural_join("inproceedings", "booktitle")
        query_ms = (time.perf_counter() - started) * 1e3

        print(
            f"day {day + 1}: +{entries_per_day} entries "
            f"(ingest {update_ms:.2f} ms, prepare {prepare_ms:.2f} ms, "
            f"queries {query_ms:.2f} ms) — "
            f"{len(by_author)} article//author, "
            f"{len(in_proc)} inproceedings//booktitle"
        )

    stats = db.stats()
    print(
        f"\nfinal: {db.segment_count} segments, {db.element_count} elements; "
        f"update log {stats.total_bytes / 1024:.1f} KB "
        f"(tag-list {stats.taglist_bytes / 1024:.1f} KB)"
    )
    print(
        "LS trade-off: every daytime insert skipped tag-list sorting and\n"
        "SB-tree maintenance; the one-off prepare step paid it back at night."
    )


if __name__ == "__main__":
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    per_day = int(sys.argv[2]) if len(sys.argv) > 2 else 80
    main(days, per_day)
