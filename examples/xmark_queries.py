"""XMark-style query workload over a chopped database (paper Section 5.3).

Generates an XMark-like auction site document, chops it into segments with
a balanced ER-tree, and answers the paper's five queries (Fig. 14) with all
three join algorithms, printing cardinalities, timings and cross-segment
statistics.

Run:  python examples/xmark_queries.py [scale] [n_segments]
"""

import sys
import time

from repro import JoinStatistics
from repro.workloads.chopper import chop_text
from repro.workloads.xmark import XMARK_QUERIES, XMarkConfig, generate_site


def main(scale: float = 0.05, n_segments: int = 60) -> None:
    print(f"generating XMark-like site (scale={scale}) ...")
    text = generate_site(XMarkConfig(scale=scale, seed=7)).to_xml()
    print(f"  {len(text)} characters")

    print(f"chopping into {n_segments} segments (balanced ER-tree) ...")
    started = time.perf_counter()
    db, _ = chop_text(text, n_segments, "balanced", seed=1)
    print(f"  loaded in {(time.perf_counter() - started) * 1e3:.1f} ms: "
          f"{db.element_count} elements, {db.segment_count} segments")
    assert db.text == text  # chopping reproduces the document exactly

    header = f"{'query':6} {'xpath':22} {'pairs':>8} {'cross%':>7} " \
             f"{'lazy ms':>9} {'std ms':>9} {'merge ms':>9}"
    print("\n" + header)
    print("-" * len(header))
    for qid, tag_a, tag_d in XMARK_QUERIES:
        stats = JoinStatistics()
        started = time.perf_counter()
        pairs = db.structural_join(tag_a, tag_d, stats=stats)
        lazy_ms = (time.perf_counter() - started) * 1e3

        started = time.perf_counter()
        db.structural_join(tag_a, tag_d, algorithm="std")
        std_ms = (time.perf_counter() - started) * 1e3

        started = time.perf_counter()
        db.structural_join(tag_a, tag_d, algorithm="merge")
        merge_ms = (time.perf_counter() - started) * 1e3

        print(f"{qid:6} {tag_a + '//' + tag_d:22} {len(pairs):>8} "
              f"{stats.cross_fraction * 100:>6.1f} "
              f"{lazy_ms:>9.2f} {std_ms:>9.2f} {merge_ms:>9.2f}")

    # Bonus: a parent/child query through the same machinery.
    pairs = db.structural_join("person", "profile", axis="child")
    print(f"\nperson/profile (child axis): {len(pairs)} pairs")


if __name__ == "__main__":
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    segments = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    main(scale, segments)
