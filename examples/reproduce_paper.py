"""Reproduce every figure of the paper's evaluation (Section 5).

Runs the full experiment suite at a configurable scale and prints each
figure's series/tables.  EXPERIMENTS.md records a run of this script next
to the paper's reported shapes.

Run:  python examples/reproduce_paper.py [--quick]

``--quick`` uses reduced sizes (about a minute); the default takes several
minutes on a laptop-class machine.
"""

from __future__ import annotations

import sys
import time

from repro.bench import (
    ablation_branch_strategy,
    ablation_push_optimizations,
    fig11_update_log,
    fig12_cross_join,
    fig13_segments,
    fig14_15_xmark,
    fig16_insert,
    fig17_element_insert,
)


def main(quick: bool = False) -> None:
    started = time.perf_counter()
    repeat = 2 if quick else 3

    print("#" * 70)
    print("# Figure 11 — update log size and build time")
    print("#" * 70)
    counts = (25, 50, 100, 150) if quick else (50, 100, 150, 200, 250, 300)
    for shape, table in fig11_update_log(segment_counts=counts, repeat=repeat).items():
        table.print()

    print("#" * 70)
    print("# Figure 12 — join time vs % cross-segment joins (LS / LD / STD)")
    print("#" * 70)
    for n_segments in (50, 100):
        for shape in ("nested", "balanced"):
            sweep = fig12_cross_join(
                n_segments=n_segments if not quick else n_segments // 2,
                shape=shape,
                repeat=repeat,
            )
            sweep.to_table(
                f"Fig 12 — {shape} ER-tree, {n_segments} segments"
            ).print()

    print("#" * 70)
    print("# Figure 13 — join time vs number of segments (LD / STD)")
    print("#" * 70)
    counts = (10, 20, 40, 80) if quick else (10, 20, 40, 80, 160)
    for shape, sweep in fig13_segments(segment_counts=counts, repeat=repeat).items():
        sweep.to_table(f"Fig 13 — {shape} ER-tree").print()

    print("#" * 70)
    print("# Figures 14 + 15 — XMark queries")
    print("#" * 70)
    cards, times = fig14_15_xmark(
        scale=0.02 if quick else 0.08,
        n_segments=50 if quick else 100,
        repeat=repeat,
    )
    cards.print()
    times.print()

    print("#" * 70)
    print("# Figure 16 — inserting one segment: LD vs traditional relabeling")
    print("#" * 70)
    counts = (10, 20, 40) if quick else (20, 40, 80, 160, 320)
    fig16_insert(doc_segment_counts=counts, repeat=repeat).to_table(
        "Fig 16 — insert one segment (times in ms)"
    ).print()

    print("#" * 70)
    print("# Figure 17 — per-element insertion: LD / LS vs PRIME")
    print("#" * 70)
    sweeps = fig17_element_insert(
        element_counts=(10, 20, 40) if quick else (10, 20, 40, 80, 160),
        tag_counts=(2, 4, 8) if quick else (2, 4, 8, 16, 32),
        segment_counts=(25, 50, 100) if quick else (25, 50, 100, 200),
        prime_base_nodes=300 if quick else 1000,
        repeat=repeat,
    )
    sweeps["elements"].to_table("Fig 17(a) — per-element µs vs elements/segment").print()
    sweeps["tags"].to_table("Fig 17(b) — per-element µs vs distinct tags").print()
    sweeps["segments"].to_table("Fig 17(c) — per-element µs vs segments").print()

    print("#" * 70)
    print("# Ablations (beyond the paper)")
    print("#" * 70)
    ablation_push_optimizations(repeat=repeat).print()
    ablation_branch_strategy(repeat=repeat).print()

    print(f"total wall time: {time.perf_counter() - started:.1f} s")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
