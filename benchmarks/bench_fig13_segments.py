"""Fig. 13: join time vs number of segments over one fixed document.

The same spine document is chopped into increasing segment counts; LD's
segment-list overhead grows while STD (which sees the same elements however
they are chopped) stays roughly flat — reproducing the crossover the paper
reports for large balanced segment counts.

Run standalone for the full series:  python benchmarks/bench_fig13_segments.py
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.experiments import fig13_segments, spine_document
from repro.bench.harness import write_envelope
from repro.workloads.chopper import chop_text

DEPTH = 200


@pytest.fixture(scope="module")
def document_text():
    return spine_document(DEPTH, bushiness=3)


@pytest.mark.parametrize("shape", ["balanced", "nested"])
@pytest.mark.parametrize("n_segments", [10, 40, 160])
def test_ld_join(benchmark, document_text, shape, n_segments):
    db, _ = chop_text(document_text, n_segments, shape)
    pairs = benchmark(db.structural_join, "t0", "t1")
    assert pairs


@pytest.mark.parametrize("n_segments", [10, 160])
def test_std_join(benchmark, document_text, n_segments):
    db, _ = chop_text(document_text, n_segments, "balanced")
    pairs = benchmark(db.structural_join, "t0", "t1", algorithm="std")
    assert pairs


def test_ld_time_grows_with_segments(document_text):
    from repro.bench.harness import measure

    times = {}
    for count in (10, 160):
        db, _ = chop_text(document_text, count, "nested")
        times[count] = measure(lambda: db.structural_join("t0", "t1"), repeat=3)
    assert times[160] > times[10]


def main() -> None:
    sweeps = fig13_segments()
    for shape, sweep in sweeps.items():
        sweep.to_table(f"Fig 13 — {shape} ER-tree").print()
    write_envelope(
        Path(__file__).resolve().parent.parent / "BENCH_fig13_segments.json",
        "fig13_segments",
        params={"segment_counts": [10, 20, 40, 80, 160],
                "shapes": list(sweeps), "depth": 200, "bushiness": 3,
                "repeat": 3},
        sweeps=list(sweeps.values()),
    )


if __name__ == "__main__":
    main()
