"""Fig. 11(a): update-log size vs number of inserted segments.

Size is not a timing quantity, so the pytest-benchmark entry times the
status-quo operation (a stats snapshot) while the assertions pin the
*shape* the paper reports: the tag-list dominates, and the nested ER-tree
grows much faster than the balanced one.

Run standalone for the full series:  python benchmarks/bench_fig11_logsize.py
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.builders import build_uniform_segments
from repro.bench.experiments import fig11_update_log
from repro.bench.harness import write_envelope
from repro.core.database import LazyXMLDatabase

SEGMENTS = 120


@pytest.fixture(scope="module", params=["balanced", "nested"])
def loaded_db(request):
    db = LazyXMLDatabase(keep_text=False)
    build_uniform_segments(db, SEGMENTS, request.param, n_tags=8)
    return request.param, db


def test_log_stats_snapshot(benchmark, loaded_db):
    shape, db = loaded_db
    stats = benchmark(db.stats)
    assert stats.segments == SEGMENTS
    # Fig. 11(a) headline: the tag-list dominates the update log.
    assert stats.taglist_bytes > stats.sbtree_bytes


def test_nested_taglist_outgrows_balanced():
    sizes = {}
    for shape in ("balanced", "nested"):
        db = LazyXMLDatabase(keep_text=False)
        build_uniform_segments(db, SEGMENTS, shape, n_tags=8)
        sizes[shape] = db.stats().taglist_bytes
    assert sizes["nested"] > 2 * sizes["balanced"]


def test_growth_is_superlinear_nested():
    points = {}
    for count in (40, 80):
        db = LazyXMLDatabase(keep_text=False)
        build_uniform_segments(db, count, "nested", n_tags=8)
        points[count] = db.stats().taglist_bytes
    # O(T N^2): doubling N should much more than double the tag-list.
    assert points[80] > 3 * points[40]


def main() -> None:
    tables = fig11_update_log()
    for table in tables.values():
        table.print()
    write_envelope(
        Path(__file__).resolve().parent.parent / "BENCH_fig11_logsize.json",
        "fig11_logsize",
        params={"segment_counts": [50, 100, 150, 200, 250, 300],
                "shapes": list(tables), "elements_per_segment": 24,
                "n_tags": 8, "repeat": 3},
        tables=list(tables.values()),
    )


if __name__ == "__main__":
    main()
