"""Replication benchmark: catch-up throughput, follower reads, failover.

Measures the replication subsystem (`repro.replication.ReplicationCluster`)
along the three axes an operator cares about:

- **catch-up throughput** — a partitioned follower rejoins and drains the
  primary's journal tail; records applied per second;
- **follower read latency** — epoch-pinned reads (pin + A//D structural
  join + release) against a caught-up follower, p50/p99;
- **failover time-to-promote** — kill the primary, promote a follower
  under a fenced higher term, and commit the first write on the new
  primary; wall-clock per round.

Results print as `repro.bench.harness.Table`s and are recorded to
``BENCH_replication.json`` at the repository root (``--smoke`` shrinks
the workload and writes ``BENCH_replication.smoke.json``).

``--fault-drill`` runs an acceptance drill instead: a stale fenced
primary races the new term, its acked-but-unreplicated write must be
detected and reported on rejoin, and every surviving node must converge
to identical text and A//D join answers.  Exits nonzero on any failure.

Run:  python benchmarks/bench_replication.py [--smoke] [--fault-drill]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.bench.harness import Table, write_envelope
from repro.errors import FencedError
from repro.replication import ReplicationCluster

TAG_A, TAG_D = "person", "interest"
_MS = 1e3


def _fragment(k: int) -> str:
    return f'<person k="{k}"><profile><interest>t{k}</interest></profile></person>'


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


# ----------------------------------------------------------------------
# scenarios


def bench_catch_up(root: Path, ops: int) -> dict:
    """Partition a follower, write ``ops`` records, time the rejoin."""
    with ReplicationCluster(root, 2) as cluster:
        cluster.insert(_fragment(0))
        cluster.partition(1)
        for k in range(1, ops + 1):
            cluster.insert(_fragment(k))
        behind = cluster.primary.last_seq - cluster.nodes[1].last_seq
        started = time.perf_counter()
        cluster.heal(1)
        elapsed = time.perf_counter() - started
        lag_after = cluster.status()["lag"][1]
        return {
            "records": behind,
            "elapsed_s": elapsed,
            "throughput_rps": behind / elapsed if elapsed > 0 else 0.0,
            "lag_after": lag_after,
        }


def bench_follower_reads(root: Path, docs: int, pins: int) -> dict:
    """Epoch-pinned read latency (pin + A//D join + release) on a
    caught-up follower, with the primary's answer as the correctness
    reference."""
    with ReplicationCluster(root, 2) as cluster:
        for k in range(docs):
            cluster.insert(_fragment(k))
        top = cluster.primary.last_seq
        with cluster.nodes[cluster.primary_id].pin() as snap:
            pairs_primary = len(snap.db.structural_join(TAG_A, TAG_D))
        samples = []
        pairs_follower = 0
        for _ in range(pins):
            begin = time.perf_counter()
            with cluster.pin_follower(1, min_seq=top) as snap:
                pairs_follower = len(snap.db.structural_join(TAG_A, TAG_D))
            samples.append(time.perf_counter() - begin)
        samples.sort()
        return {
            "pins": pins,
            "p50_ms": _percentile(samples, 0.50) * _MS,
            "p99_ms": _percentile(samples, 0.99) * _MS,
            "pairs_primary": pairs_primary,
            "pairs_follower": pairs_follower,
        }


def bench_failover(root: Path, rounds: int, docs: int) -> dict:
    """Kill the primary; time promote + first committed write on the new
    primary, one fresh cluster per round."""
    times = []
    for r in range(rounds):
        with ReplicationCluster(root / f"round-{r}", 2) as cluster:
            for k in range(docs):
                cluster.insert(_fragment(k))
            cluster.kill(0)
            begin = time.perf_counter()
            cluster.promote(1)
            cluster.insert(_fragment(docs))
            times.append(time.perf_counter() - begin)
            assert cluster.status()["term"] > 1
    times.sort()
    return {
        "rounds": rounds,
        "rounds_ms": [t * _MS for t in times],
        "p50_ms": _percentile(times, 0.50) * _MS,
        "max_ms": times[-1] * _MS,
    }


# ----------------------------------------------------------------------
# fault drill (acceptance; exit nonzero on failure)


def fault_drill() -> int:
    """Stale fenced primary vs new term; lost-write detection; convergence."""
    with tempfile.TemporaryDirectory(prefix="repl-drill-") as tmp:
        cluster = ReplicationCluster(Path(tmp) / "cluster", 2)
        try:
            acked = []
            for k in range(3):
                cluster.insert(_fragment(k))
                acked.append(k)
            cluster.partition(0)
            cluster.promote(1)
            for k in (3, 4):
                cluster.insert(_fragment(k))
                acked.append(k)
            stale = {"op": "insert", "fragment": _fragment(99), "position": 0}
            try:
                cluster.commit_from(0, dict(stale))
            except FencedError as exc:
                print(f"[bench_replication] stale primary fenced at term {exc.term}")
            else:
                print("[bench_replication] FAIL: stale primary was not fenced")
                return 1
            cluster.kill(0)
            report = cluster.restart(0)
            if report is None or report.lost != 1:
                print(f"[bench_replication] FAIL: lost write not reported ({report})")
                return 1
            print(
                f"[bench_replication] rejoin reported {report.lost} lost "
                f"write(s) at seqs {report.lost_seqs}"
            )
            cluster.heartbeat_all()
            expected_text = "".join(_fragment(k) for k in acked)
            answers = set()
            for node_id, node in cluster.nodes.items():
                db = node.durable.db
                if db.text != expected_text:
                    print(f"[bench_replication] FAIL: node {node_id} text diverged")
                    return 1
                pairs = db.structural_join(TAG_A, TAG_D)
                answers.add(
                    tuple(
                        sorted(
                            (db.global_span(a), db.global_span(d))
                            for a, d in pairs
                        )
                    )
                )
            if len(answers) != 1 or len(next(iter(answers))) != len(acked):
                print("[bench_replication] FAIL: A//D answers diverged across nodes")
                return 1
            print(
                f"[bench_replication] {len(cluster.nodes)} nodes converged: "
                f"{len(acked)} docs, identical A//D answers; drill OK"
            )
            return 0
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# driver


def main() -> int:
    smoke = "--smoke" in sys.argv
    if "--fault-drill" in sys.argv:
        return fault_drill()
    catch_up_ops = 48 if smoke else 256
    read_docs = 24 if smoke else 96
    read_pins = 40 if smoke else 200
    failover_rounds = 3 if smoke else 5

    with tempfile.TemporaryDirectory(prefix="repl-bench-") as tmp:
        root = Path(tmp)
        catch_up = bench_catch_up(root / "catchup", catch_up_ops)
        reads = bench_follower_reads(root / "reads", read_docs, read_pins)
        failover = bench_failover(root / "failover", failover_rounds, 8)

    table = Table(
        "replication: catch-up / follower reads / failover",
        ["scenario", "n", "p50 ms", "p99/max ms", "rate"],
    )
    table.add_row(
        ["catch-up", catch_up["records"], "-", "-",
         f"{catch_up['throughput_rps']:.0f} rec/s"]
    )
    table.add_row(
        ["follower read", reads["pins"], f"{reads['p50_ms']:.3f}",
         f"{reads['p99_ms']:.3f}", "-"]
    )
    table.add_row(
        ["failover", failover["rounds"], f"{failover['p50_ms']:.2f}",
         f"{failover['max_ms']:.2f}", "-"]
    )
    table.print()

    results = {
        "catch_up": catch_up,
        "follower_reads": reads,
        "failover": failover,
        "summary": {
            "catch_up_rps": catch_up["throughput_rps"],
            "follower_read_p50_ms": reads["p50_ms"],
            "failover_p50_ms": failover["p50_ms"],
        },
    }
    name = "BENCH_replication.smoke.json" if smoke else "BENCH_replication.json"
    write_envelope(
        Path(__file__).resolve().parent.parent / name,
        "replication",
        params={
            "followers": 2,
            "catch_up_ops": catch_up_ops,
            "read_docs": read_docs,
            "read_pins": read_pins,
            "failover_rounds": failover_rounds,
        },
        tables=[table],
        results=results,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
