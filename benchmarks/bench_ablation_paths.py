"""Ablation E10: stored tag-list paths vs recomputed branch positions.

The tag-list stores each segment's full ER-tree path so that Lazy-Join can
find ``P_T^S`` (the stack frame's child toward the descendant segment) in
O(log N).  Without stored paths an implementation must climb parent
pointers — O(chain depth) per stack frame.  Deep nested chains make the
difference measurable.

Run standalone for the table:  python benchmarks/bench_ablation_paths.py
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.experiments import ablation_branch_strategy
from repro.bench.harness import write_envelope
from repro.core.database import LazyXMLDatabase
from repro.workloads.join_mix import build_join_mix, sweep_configs


@pytest.fixture(scope="module")
def deep_db():
    config = sweep_configs(120, "nested", [1.0])[0]
    database = LazyXMLDatabase(keep_text=False)
    build_join_mix(database, config)
    return database


@pytest.mark.parametrize("strategy", ["path", "bisect", "walk"])
def test_join_with_strategy(benchmark, deep_db, strategy):
    pairs = benchmark(
        deep_db.structural_join, "a", "d", branch_strategy=strategy
    )
    assert pairs


def test_strategies_agree(deep_db):
    results = {
        strategy: sorted(deep_db.structural_join("a", "d", branch_strategy=strategy))
        for strategy in ("path", "bisect", "walk")
    }
    assert results["path"] == results["bisect"] == results["walk"]


def main() -> None:
    table = ablation_branch_strategy()
    table.print()
    write_envelope(
        Path(__file__).resolve().parent.parent / "BENCH_ablation_paths.json",
        "ablation_paths",
        params={"n_segments": 120, "fraction": 1.0,
                "strategies": ["path", "bisect", "walk"]},
        tables=[table],
    )


if __name__ == "__main__":
    main()
