"""Fig. 16: inserting one mid-document segment — LD vs relabeling.

The traditional index rewrites (delete + reinsert) every global label at or
after the edit point; the lazy database only touches the in-memory update
log and appends the new segment's records.  Expected shape: the traditional
cost grows with document size, LD stays roughly flat — the paper's log-scale
gap.

Also measures the **batched-ingest** flavour of the same workload: a
stream of arriving documents committed op-at-a-time (one durable commit —
journal append + fsync — per document) vs as `apply_batch` groups (one
journal record and one fsync per group).  The recorded ops/s ratio is the
fsync amortization the batch path buys.

Run standalone for the full series:  python benchmarks/bench_fig16_insert.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import pytest

from repro.bench.builders import build_uniform_segments, insert_under
from repro.bench.experiments import fig16_insert
from repro.bench.harness import Table, measure, write_envelope
from repro.core.database import LazyXMLDatabase
from repro.durability.database import DurableDatabase
from repro.labeling.interval import IntervalLabelingIndex
from repro.workloads.generator import generate_uniform_fragment, tag_pool

TAGS = tag_pool(8)
PROBE = generate_uniform_fragment(25, TAGS)


def lazy_db(n_segments: int):
    db = LazyXMLDatabase(keep_text=False)
    sids = build_uniform_segments(db, n_segments, "flat", elements_per_segment=25)
    return db, sids[len(sids) // 2]


def traditional_index(n_segments: int):
    idx = IntervalLabelingIndex()
    fragment = generate_uniform_fragment(25, TAGS)
    idx.insert_fragment("<root>" + fragment * n_segments + "</root>", 0)
    position = len("<root>") + (n_segments // 2) * len(fragment) + len(TAGS[0]) + 2
    return idx, position


@pytest.mark.parametrize("n_segments", [20, 80])
def test_lazy_insert(benchmark, n_segments):
    db, mid_sid = lazy_db(n_segments)
    benchmark(insert_under, db, mid_sid, PROBE, TAGS[0])


@pytest.mark.parametrize("n_segments", [20, 80])
def test_traditional_insert(benchmark, n_segments):
    idx, position = traditional_index(n_segments)
    benchmark(idx.insert_fragment, PROBE, position)


def test_lazy_flat_traditional_grows():
    """Pin the figure's shape: relabeling scales with N, lazy does not."""
    lazy_times, trad_times = {}, {}
    for count in (20, 80):
        db, mid = lazy_db(count)
        lazy_times[count] = measure(
            lambda: insert_under(db, mid, PROBE, TAGS[0]), repeat=3
        )
        idx, pos = traditional_index(count)
        trad_times[count] = measure(
            lambda: idx.insert_fragment(PROBE, pos), repeat=3
        )
    assert trad_times[80] > 2 * trad_times[20]
    assert trad_times[80] > 5 * lazy_times[80]


def test_traditional_relabels_about_half():
    idx, position = traditional_index(40)
    total = len(idx)
    idx.insert_fragment(PROBE, position)
    assert 0.3 * total < idx.relabelled_last_update < 0.8 * total


def batched_ingest_rates(n_ops: int = 400, batch: int = 100, repeat: int = 5) -> dict:
    """Ops/s for op-at-a-time vs batched durable ingestion.

    Same arriving-document stream both ways — small *distinct* documents
    (the online-registration shape at its smallest, where per-document
    commit overhead dominates apply cost); op-at-a-time pays one journal
    append + fsync per document, the batched run one per ``batch``
    documents.  Best-of-``repeat`` with a fresh database directory per
    run so journal growth never favours a later run.
    """
    a, b, c = TAGS[:3]
    fragments = [f"<{a}><{b}>doc{i}</{b}><{c}/></{a}>" for i in range(n_ops)]
    ops = [
        {"op": "insert", "fragment": fragment, "position": None}
        for fragment in fragments
    ]

    def timed(run) -> float:
        best = float("inf")
        for _ in range(repeat):
            with tempfile.TemporaryDirectory() as directory:
                with DurableDatabase(directory) as db:
                    t0 = time.perf_counter()
                    run(db)
                    best = min(best, time.perf_counter() - t0)
        return best

    def serial(db) -> None:
        for fragment in fragments:
            db.insert(fragment)

    def batched(db) -> None:
        for start in range(0, n_ops, batch):
            db.apply_batch([dict(sub) for sub in ops[start : start + batch]])

    t_serial = timed(serial)
    t_batched = timed(batched)
    serial_rate = n_ops / t_serial
    batched_rate = n_ops / t_batched
    return {
        "n_ops": n_ops,
        "batch": batch,
        "serial_ops_per_s": serial_rate,
        "batched_ops_per_s": batched_rate,
        "speedup": batched_rate / serial_rate,
        "meets_3x_target": batched_rate >= 3 * serial_rate,
    }


def test_batched_ingest_amortizes_fsync(tmp_path):
    """Pin the batch path's point: one commit per group, not per op.

    The full benchmark records the real speedup (3x-plus); this quick
    pin uses a smaller stream and a noise-tolerant floor so a shared CI
    runner's I/O jitter cannot flake it.
    """
    rates = batched_ingest_rates(n_ops=100, batch=25, repeat=3)
    assert rates["speedup"] >= 1.5, rates


def main() -> None:
    sweep = fig16_insert()
    sweep.to_table("Fig 16 — insert one segment (ms)").print()
    ingest = batched_ingest_rates()
    table = Table(
        "fig16 batched ingest — durable ops/s",
        ["mode", "ops", "batch", "ops_per_s"],
    )
    table.add_row(["op-at-a-time", ingest["n_ops"], 1, ingest["serial_ops_per_s"]])
    table.add_row(["batched", ingest["n_ops"], ingest["batch"],
                   ingest["batched_ops_per_s"]])
    table.print()
    print(f"[bench_fig16] batched ingest speedup: {ingest['speedup']:.1f}x "
          f"({'meets' if ingest['meets_3x_target'] else 'MISSES'} the 3x target)")
    write_envelope(
        Path(__file__).resolve().parent.parent / "BENCH_fig16_insert.json",
        "fig16_insert",
        params={"doc_segment_counts": [20, 40, 80, 160],
                "elements_per_segment": 25, "n_tags": 8, "repeat": 3},
        sweeps=[sweep],
        tables=[table],
        results={"batched_ingest": ingest},
    )


if __name__ == "__main__":
    main()
