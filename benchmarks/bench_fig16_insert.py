"""Fig. 16: inserting one mid-document segment — LD vs relabeling.

The traditional index rewrites (delete + reinsert) every global label at or
after the edit point; the lazy database only touches the in-memory update
log and appends the new segment's records.  Expected shape: the traditional
cost grows with document size, LD stays roughly flat — the paper's log-scale
gap.

Run standalone for the full series:  python benchmarks/bench_fig16_insert.py
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.builders import build_uniform_segments, insert_under
from repro.bench.experiments import fig16_insert
from repro.bench.harness import measure, write_envelope
from repro.core.database import LazyXMLDatabase
from repro.labeling.interval import IntervalLabelingIndex
from repro.workloads.generator import generate_uniform_fragment, tag_pool

TAGS = tag_pool(8)
PROBE = generate_uniform_fragment(25, TAGS)


def lazy_db(n_segments: int):
    db = LazyXMLDatabase(keep_text=False)
    sids = build_uniform_segments(db, n_segments, "flat", elements_per_segment=25)
    return db, sids[len(sids) // 2]


def traditional_index(n_segments: int):
    idx = IntervalLabelingIndex()
    fragment = generate_uniform_fragment(25, TAGS)
    idx.insert_fragment("<root>" + fragment * n_segments + "</root>", 0)
    position = len("<root>") + (n_segments // 2) * len(fragment) + len(TAGS[0]) + 2
    return idx, position


@pytest.mark.parametrize("n_segments", [20, 80])
def test_lazy_insert(benchmark, n_segments):
    db, mid_sid = lazy_db(n_segments)
    benchmark(insert_under, db, mid_sid, PROBE, TAGS[0])


@pytest.mark.parametrize("n_segments", [20, 80])
def test_traditional_insert(benchmark, n_segments):
    idx, position = traditional_index(n_segments)
    benchmark(idx.insert_fragment, PROBE, position)


def test_lazy_flat_traditional_grows():
    """Pin the figure's shape: relabeling scales with N, lazy does not."""
    lazy_times, trad_times = {}, {}
    for count in (20, 80):
        db, mid = lazy_db(count)
        lazy_times[count] = measure(
            lambda: insert_under(db, mid, PROBE, TAGS[0]), repeat=3
        )
        idx, pos = traditional_index(count)
        trad_times[count] = measure(
            lambda: idx.insert_fragment(PROBE, pos), repeat=3
        )
    assert trad_times[80] > 2 * trad_times[20]
    assert trad_times[80] > 5 * lazy_times[80]


def test_traditional_relabels_about_half():
    idx, position = traditional_index(40)
    total = len(idx)
    idx.insert_fragment(PROBE, position)
    assert 0.3 * total < idx.relabelled_last_update < 0.8 * total


def main() -> None:
    sweep = fig16_insert()
    sweep.to_table("Fig 16 — insert one segment (ms)").print()
    write_envelope(
        Path(__file__).resolve().parent.parent / "BENCH_fig16_insert.json",
        "fig16_insert",
        params={"doc_segment_counts": [20, 40, 80, 160],
                "elements_per_segment": 25, "n_tags": 8, "repeat": 3},
        sweeps=[sweep],
    )


if __name__ == "__main__":
    main()
