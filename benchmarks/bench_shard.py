"""Sharded scatter-gather join throughput at N = 1 / 2 / 4 shards.

Runs the fig14 XMark query mix against the same set of site documents
partitioned across N shards, in the regime the partitioning exists for:
a steady trickle of updates interleaved with the queries.  Each round
inserts one small fragment into one document (rotating), then runs the
whole query mix.  On one shard every update invalidates the compiled
read path for the entire corpus, so every query recompiles; at N=4 the
update touches one shard's versions and the other three answer from
their memos while the written shard recomputes — shard affinity is the
speedup, IPC is the tax.

Reports join throughput (queries/s) and per-query p50/p99 latency per
shard count into ``BENCH_shard.json`` (``--smoke`` shrinks the corpus
and writes ``BENCH_shard.smoke.json``).

``--fault-drill`` instead runs the worker-loss acceptance check: kill
one worker process mid-stream, require the in-flight query to fail with
a typed :class:`~repro.errors.WorkerLost` within the deadline (never a
hang) and the next query to answer correctly in degraded mode.  Exits
non-zero on any violation, so CI can gate on it.

Run:  python benchmarks/bench_shard.py [--smoke] [--fault-drill]
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

from repro.bench.harness import Table, write_envelope
from repro.workloads.xmark import XMARK_QUERIES, XMarkConfig, generate_site

SHARD_COUNTS = (1, 2, 4)
_MS = 1e3


def _default_executor() -> str:
    return "process" if os.name == "posix" else "inprocess"


def _site_texts(n_docs: int, scale: float) -> list[str]:
    return [
        generate_site(XMarkConfig(scale=scale, seed=seed)).to_xml()
        for seed in range(n_docs)
    ]


def _build(n_shards: int, texts: list[str], executor: str):
    from repro.shard import ShardedDatabase

    db = ShardedDatabase(n_shards, executor=executor)
    for text in texts:
        db.insert(text)
    return db


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _run_mix(db, rounds: int) -> dict:
    """``rounds`` x (one rotating-document insert + the full fig14 mix)."""
    queries = [(a, d) for _, a, d in XMARK_QUERIES]
    # Warm every shard's compiled read path before the clock starts.
    pairs = {f"{a}//{d}": len(db.structural_join(a, d)) for a, d in queries}
    docs = db._doc_table()
    latencies: list[float] = []
    started = time.perf_counter()
    for round_no in range(rounds):
        doc = db._doc_table()[round_no % len(docs)]
        db.insert("<x>u</x>", doc.vstart + len("<site>"))
        for tag_a, tag_d in queries:
            t0 = time.perf_counter()
            db.structural_join(tag_a, tag_d)
            latencies.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - started
    latencies.sort()
    return {
        "queries": len(latencies),
        "elapsed_s": elapsed,
        "throughput_qps": len(latencies) / elapsed,
        "p50_ms": _percentile(latencies, 0.50) * _MS,
        "p99_ms": _percentile(latencies, 0.99) * _MS,
        "pairs": pairs,
    }


def bench_scatter(smoke: bool, executor: str) -> tuple[Table, dict]:
    scale = 0.01 if smoke else 0.03
    n_docs = 8
    rounds = 3 if smoke else 8
    texts = _site_texts(n_docs, scale)
    table = Table(
        "sharded fig14 mix — updates interleaved",
        ["shards", "executor", "queries", "throughput_qps", "p50_ms", "p99_ms"],
    )
    results: dict = {
        "params": {
            "scale": scale,
            "n_docs": n_docs,
            "rounds": rounds,
            "executor": executor,
        }
    }
    for n_shards in SHARD_COUNTS:
        db = _build(n_shards, texts, executor)
        try:
            run = _run_mix(db, rounds)
        finally:
            db.close()
        results[f"N={n_shards}"] = run
        table.add_row(
            [n_shards, executor, run["queries"], run["throughput_qps"],
             run["p50_ms"], run["p99_ms"]]
        )
    base = results["N=1"]["throughput_qps"]
    results["summary"] = {
        "speedup_n2": results["N=2"]["throughput_qps"] / base,
        "speedup_n4": results["N=4"]["throughput_qps"] / base,
        "meets_1p5x_target": results["N=4"]["throughput_qps"] / base >= 1.5,
    }
    return table, results


def fault_drill(executor: str) -> int:
    """Acceptance: worker loss is typed and fast, service degrades, never hangs."""
    from repro.errors import WorkerLost

    if executor != "process":
        print("[bench_shard] fault drill requires the process executor")
        return 1
    texts = _site_texts(4, 0.01)
    db = _build(2, texts, executor)
    try:
        tag_a, tag_d = XMARK_QUERIES[0][1], XMARK_QUERIES[0][2]
        want = len(db.structural_join(tag_a, tag_d))
        worker = db.executor._workers[0]
        worker.process.kill()
        worker.process.join(timeout=5)
        deadline = 2.0
        started = time.perf_counter()
        try:
            db.executor.scatter([(0, "ping", ())], timeout=deadline)
        except WorkerLost as exc:
            elapsed = time.perf_counter() - started
            if elapsed > deadline + 1.0:
                print(f"[bench_shard] FAIL: loss took {elapsed:.2f}s")
                return 1
            print(f"[bench_shard] worker loss typed in {elapsed * _MS:.1f}ms: {exc}")
        else:
            print("[bench_shard] FAIL: dead worker did not raise WorkerLost")
            return 1
        db.flush_caches()  # force the degraded path, not a cache answer
        got = len(db.structural_join(tag_a, tag_d))
        if got != want:
            print(f"[bench_shard] FAIL: degraded answer {got} != {want}")
            return 1
        print(f"[bench_shard] degraded query correct ({got} pairs); drill OK")
        return 0
    finally:
        db.close()


def main() -> int:
    smoke = "--smoke" in sys.argv
    executor = _default_executor()
    if "--inprocess" in sys.argv:
        executor = "inprocess"
    if "--fault-drill" in sys.argv:
        return fault_drill(executor)
    table, results = bench_scatter(smoke, executor)
    table.print()
    summary = results["summary"]
    print(
        f"[bench_shard] N=2 {summary['speedup_n2']:.2f}x, "
        f"N=4 {summary['speedup_n4']:.2f}x vs N=1 "
        f"(target >= 1.5x at N=4: "
        f"{'met' if summary['meets_1p5x_target'] else 'MISSED'})"
    )
    name = "BENCH_shard.smoke.json" if smoke else "BENCH_shard.json"
    write_envelope(
        Path(__file__).resolve().parent.parent / name,
        "shard_scatter",
        params={"smoke": smoke, "executor": executor,
                "shard_counts": list(SHARD_COUNTS)},
        tables=[table],
        results=results,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
