"""Ablation E11: segment packing (Section 5.3 / future work).

The paper suggests collapsing nested segments "to reduce the overall number
of segments, increase their size, and improve query performance" when
fragmentation hurts.  This benchmark measures a fragmented database (deep
nested chain) before and after :meth:`LazyXMLDatabase.compact`: join time
should drop toward the single-segment cost, and the update log should
shrink.

Run standalone for the table:  python benchmarks/bench_ablation_repack.py
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.harness import Table, measure, write_envelope
from repro.core.database import LazyXMLDatabase
from repro.workloads.join_mix import JoinMixConfig, build_join_mix

N_SEGMENTS = 80


def fragmented_db() -> LazyXMLDatabase:
    db = LazyXMLDatabase(keep_text=False)
    build_join_mix(
        db,
        JoinMixConfig(
            n_segments=N_SEGMENTS, shape="nested", in_blocks_per_segment=2
        ),
    )
    return db


@pytest.fixture(scope="module")
def before_db():
    return fragmented_db()


@pytest.fixture(scope="module")
def after_db():
    db = fragmented_db()
    db.compact()
    return db


def test_join_fragmented(benchmark, before_db):
    assert benchmark(before_db.structural_join, "a", "d")


def test_join_compacted(benchmark, after_db):
    assert benchmark(after_db.structural_join, "a", "d")


def test_compaction_preserves_results(before_db, after_db):
    assert len(before_db.structural_join("a", "d")) == len(
        after_db.structural_join("a", "d")
    )


def test_compaction_shrinks_log(before_db, after_db):
    assert after_db.stats().total_bytes < before_db.stats().total_bytes
    assert after_db.segment_count < before_db.segment_count


def main() -> None:
    table = Table(
        "Ablation — segment packing (compact)",
        ["state", "segments", "log_kb", "join_ms"],
    )
    db = fragmented_db()
    table.add_row(
        [
            "fragmented",
            db.segment_count,
            db.stats().total_bytes / 1024,
            measure(lambda: db.structural_join("a", "d"), repeat=3) * 1e3,
        ]
    )
    db.compact()
    table.add_row(
        [
            "compacted",
            db.segment_count,
            db.stats().total_bytes / 1024,
            measure(lambda: db.structural_join("a", "d"), repeat=3) * 1e3,
        ]
    )
    table.print()
    write_envelope(
        Path(__file__).resolve().parent.parent / "BENCH_ablation_repack.json",
        "ablation_repack",
        params={"n_segments": N_SEGMENTS, "shape": "nested",
                "in_blocks_per_segment": 2, "repeat": 3},
        tables=[table],
    )


if __name__ == "__main__":
    main()
