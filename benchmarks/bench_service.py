"""Service-layer benchmark: query latency/throughput under concurrency.

Measures the resilient access layer (`repro.service.DatabaseService`) the
way an operator would: N reader threads issuing structural joins against
pinned snapshots, with and without a concurrent writer publishing epochs,
at 1/4/16 readers.  Reports per-query p50/p95 latency and aggregate
throughput, printed as a `repro.bench.harness.Table` and recorded to
``BENCH_service.json`` at the repository root.

Run standalone for the full series:  python benchmarks/bench_service.py
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import pytest

from repro.bench.harness import Table, write_envelope
from repro.core.database import LazyXMLDatabase
from repro.errors import Busy
from repro.service import DatabaseService, ServiceConfig
from repro.workloads.scenarios import registration_stream

READER_COUNTS = (1, 4, 16)
DOCS = 30


def build_service(read_limit: int = 32) -> DatabaseService:
    db = LazyXMLDatabase(keep_text=False)
    for fragment in registration_stream(DOCS):
        db.insert(fragment)
    config = ServiceConfig(
        read_limit=read_limit,
        read_queue_depth=64,
        admission_wait=2.0,
        pressure_check_every=0,  # measure the steady state, not maintenance
    )
    return DatabaseService(db, config=config)


def percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def run_scenario(
    readers: int, with_writer: bool, *, duration: float = 0.8
) -> dict:
    """One cell of the sweep; returns the recorded measurements."""
    svc = build_service()
    stop = threading.Event()
    start_barrier = threading.Barrier(readers + 1)
    latencies: list[list[float]] = [[] for _ in range(readers)]

    def reader(slot: list[float]):
        start_barrier.wait()
        while not stop.is_set():
            begin = time.perf_counter()
            svc.join("registration", "interest")
            slot.append(time.perf_counter() - begin)

    def writer():
        i = 0
        while not stop.is_set():
            try:
                svc.insert(f"<registration><user>w{i}</user></registration>")
            except Busy:
                pass
            i += 1
            time.sleep(0.001)  # a steady, not saturating, update stream

    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in latencies
    ]
    if with_writer:
        threads.append(threading.Thread(target=writer, daemon=True))
    for thread in threads:
        thread.start()
    start_barrier.wait()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=10.0)
    epochs = svc.health()["epochs"]
    svc.close()

    samples = sorted(lat for slot in latencies for lat in slot)
    elapsed = duration
    return {
        "readers": readers,
        "writer": with_writer,
        "queries": len(samples),
        "p50_ms": percentile(samples, 0.50) * 1e3,
        "p95_ms": percentile(samples, 0.95) * 1e3,
        "throughput_qps": len(samples) / elapsed,
        "epochs_published": epochs["publishes"],
    }


def run_sweep(duration: float = 0.8) -> list[dict]:
    return [
        run_scenario(readers, with_writer, duration=duration)
        for with_writer in (False, True)
        for readers in READER_COUNTS
    ]


def report(results: list[dict]) -> Table:
    table = Table(
        "service: join latency under concurrent readers",
        ["readers", "writer", "queries", "p50 ms", "p95 ms", "qps"],
    )
    for row in results:
        table.add_row(
            [
                row["readers"],
                "yes" if row["writer"] else "no",
                row["queries"],
                row["p50_ms"],
                row["p95_ms"],
                row["throughput_qps"],
            ]
        )
    return table


# ----------------------------------------------------------------------
# pytest entry points (reduced sizes; the standalone main prints the series)


def test_single_reader_latency(benchmark):
    svc = build_service()
    pairs = benchmark(svc.join, "registration", "interest")
    assert pairs
    svc.close()


@pytest.mark.parametrize("with_writer", [False, True])
def test_concurrent_scenario_shape(with_writer):
    result = run_scenario(2, with_writer, duration=0.2)
    assert result["queries"] > 0
    assert result["p95_ms"] >= result["p50_ms"]
    if with_writer:
        assert result["epochs_published"] > 0


def main() -> None:
    results = run_sweep()
    table = report(results)
    table.print()
    write_envelope(
        Path(__file__).resolve().parent.parent / "BENCH_service.json",
        "service",
        params={"documents": DOCS, "duration_s": 0.8,
                "reader_counts": list(READER_COUNTS)},
        tables=[table],
        results={"scenarios": results},
    )


if __name__ == "__main__":
    main()
