"""Fig. 17: per-element insertion time — LD / LS vs the PRIME scheme.

PRIME keeps labels immutable but pays for order maintenance: inserting in
the middle forces a CRT recomputation of every simultaneous-congruence
group from the insertion point on.  The lazy approach just appends a log
node and index records.  Expected shape: PRIME orders of magnitude slower;
lazy per-element time falls as the segment grows, rises with tag count and
with segment count.

Run standalone for all three sweeps:
python benchmarks/bench_fig17_element_insert.py
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.builders import build_uniform_segments, insert_under
from repro.bench.experiments import fig17_element_insert
from repro.bench.harness import write_envelope
from repro.core.database import LazyXMLDatabase
from repro.labeling.prime import PrimeLabeling
from repro.workloads.generator import generate_uniform_fragment, tag_pool

TAGS = tag_pool(8)


def lazy_db(mode: str, n_segments: int = 60):
    db = LazyXMLDatabase(mode=mode, keep_text=False)
    sids = build_uniform_segments(db, n_segments, "balanced", n_tags=8)
    return db, sids[len(sids) // 2]


def prime_labeling(group_size: int, base: int = 600):
    labeling = PrimeLabeling(group_size=group_size, capacity=base * 8)
    root = labeling.insert(None)
    for _ in range(base - 1):
        labeling.insert(root)
    return labeling, root


@pytest.mark.parametrize("n_elements", [10, 80])
@pytest.mark.parametrize("mode", ["dynamic", "static"])
def test_lazy_segment_insert(benchmark, mode, n_elements):
    db, mid = lazy_db(mode)
    fragment = generate_uniform_fragment(n_elements, TAGS)
    benchmark(insert_under, db, mid, fragment, TAGS[0])


@pytest.mark.parametrize("group_size", [10, 50])
def test_prime_mid_insert(benchmark, group_size):
    labeling, root = prime_labeling(group_size)

    def insert_mid():
        # Insert then delete so the document size (and thus per-round cost)
        # stays constant across however many rounds the harness runs —
        # both operations pay the SC-recompute cost being measured.
        nid = labeling.insert(root, order_index=len(labeling) // 2)
        labeling.delete(nid)

    benchmark(insert_mid)


def test_prime_much_slower_than_lazy():
    from repro.bench.harness import measure

    db, mid = lazy_db("dynamic")
    fragment = generate_uniform_fragment(40, TAGS)
    t_lazy = measure(
        lambda: insert_under(db, mid, fragment, TAGS[0]), repeat=3
    ) / 40
    labeling, root = prime_labeling(10)
    mid_order = len(labeling) // 2

    def prime_40():
        for _ in range(40):
            labeling.insert(root, order_index=mid_order)

    t_prime = measure(prime_40, repeat=3) / 40
    assert t_prime > 3 * t_lazy


def test_larger_segments_amortize_better():
    from repro.bench.harness import measure

    db, mid = lazy_db("dynamic")
    per_element = {}
    for n in (10, 160):
        fragment = generate_uniform_fragment(n, TAGS)
        per_element[n] = (
            measure(lambda: insert_under(db, mid, fragment, TAGS[0]), repeat=3) / n
        )
    assert per_element[160] < per_element[10]


def main() -> None:
    sweeps = fig17_element_insert()
    sweeps["elements"].to_table("Fig 17(a) — µs/element vs elements/segment").print()
    sweeps["tags"].to_table("Fig 17(b) — µs/element vs distinct tags").print()
    sweeps["segments"].to_table("Fig 17(c) — µs/element vs segments").print()
    write_envelope(
        Path(__file__).resolve().parent.parent / "BENCH_fig17_element_insert.json",
        "fig17_element_insert",
        params={"element_counts": [10, 20, 40, 80, 160],
                "tag_counts": [2, 4, 8, 16, 32],
                "segment_counts": [25, 50, 100, 200],
                "shape": "balanced", "n_segments": 100,
                "prime_groups": [10, 50], "repeat": 3},
        sweeps=list(sweeps.values()),
    )


if __name__ == "__main__":
    main()
