"""Ablation E9: the two Lazy-Join stack optimizations (Section 4.2).

Optimization (i) pushes only A-elements containing at least one child
segment's insertion point; (ii) trims top-frame elements that ended before
the new segment's branch point.  Both are pure prunings — results are
identical either way (the test suite proves it) — so this benchmark
quantifies their time/work effect.

Run standalone for the table:  python benchmarks/bench_ablation_pushopt.py
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.experiments import ablation_push_optimizations
from repro.bench.harness import write_envelope
from repro.core.database import LazyXMLDatabase
from repro.core.join import JoinStatistics
from repro.workloads.join_mix import build_join_mix, sweep_configs


@pytest.fixture(scope="module")
def db():
    config = sweep_configs(50, "nested", [0.8])[0]
    database = LazyXMLDatabase(keep_text=False)
    build_join_mix(database, config)
    return database


@pytest.mark.parametrize("optimize_push", [True, False], ids=["push-opt", "push-all"])
@pytest.mark.parametrize("trim_top", [True, False], ids=["trim", "no-trim"])
def test_join_with_toggles(benchmark, db, optimize_push, trim_top):
    pairs = benchmark(
        db.structural_join,
        "a",
        "d",
        optimize_push=optimize_push,
        trim_top=trim_top,
    )
    assert pairs


def test_optimization_reduces_pushed_elements(db):
    on, off = JoinStatistics(), JoinStatistics()
    db.structural_join("a", "d", optimize_push=True, stats=on)
    db.structural_join("a", "d", optimize_push=False, stats=off)
    assert on.elements_pushed < off.elements_pushed


def main() -> None:
    table = ablation_push_optimizations()
    table.print()
    write_envelope(
        Path(__file__).resolve().parent.parent / "BENCH_ablation_pushopt.json",
        "ablation_pushopt",
        params={"n_segments": 50, "shape": "nested", "fraction": 0.8},
        tables=[table],
    )


if __name__ == "__main__":
    main()
