"""Compiled read path: warm-cache vs uncached Lazy-Join envelopes.

Times the same structural-join workloads the figure benchmarks use —
fig12's cross-join mix, fig13's chopped spine document and fig14's XMark
query set — twice each: once with the read-path cache disabled (the
``REPRO_READPATH_CACHE=0`` kill-switch behaviour: every join recompiles
its segment lists and element arrays) and once warm (cache enabled, first
call compiles, the measured calls hit).  Records per-workload speedups and
the cache hit/miss counters into ``BENCH_joins.json``.

Two query classes are measured per workload:

- the canonical ``A//D`` query of the figure (output-emission-heavy for
  some workloads, so the compile savings are diluted by pair building);
- the reversed ``D//A`` query, which yields no pairs — a pure scan where
  the measured cost *is* the read path, the regime updates-then-queries
  services live in when most probes miss.

Run:  python benchmarks/bench_joins.py [--smoke] [--profile]

``--smoke`` shrinks the workloads to seconds-total for the CI perf-smoke
job and writes to ``BENCH_joins.smoke.json`` instead.  ``--profile``
additionally runs the uncached fig12 representative under cProfile and
attaches the top hotspots to the envelope's ``results.profile`` branch.
"""

from __future__ import annotations

import json
import statistics
import sys
from pathlib import Path

from repro.bench.experiments import _xmark_chop_ops, spine_document
from repro.bench.harness import Table, measure, write_envelope
from repro.core.database import LazyXMLDatabase
from repro.core.join import JoinStatistics
from repro.joins import kernels
from repro.workloads.chopper import apply_chop, chop_text
from repro.workloads.join_mix import build_join_mix, sweep_configs
from repro.workloads.xmark import XMARK_QUERIES, XMarkConfig, generate_site

_MS = 1e3


def _time_both(db: LazyXMLDatabase, queries, repeat: int) -> dict:
    """Best-of-``repeat`` uncached / compiled / warm times per query.

    ``queries`` is a list of (label, tag_a, tag_d).  Three regimes:

    - ``uncached``: cache disabled (the kill-switch path) — every call
      recompiles segment lists and element arrays from the structures;
    - ``compiled``: cache enabled but the join-result memo bypassed (by
      passing a statistics collector), so the merge re-runs each call over
      memoized compiled artifacts — the steady state after *any* update
      touching either tag;
    - ``warm``: fully warm, result-memo hits — the steady state of
      repeated identical queries between updates.
    """
    out = {}
    for label, tag_a, tag_d in queries:
        db.readpath.disable()
        t_off = measure(lambda: db.structural_join(tag_a, tag_d), repeat=repeat)
        db.readpath.enable()
        pairs = len(db.structural_join(tag_a, tag_d))  # compile pass
        t_compiled = measure(
            lambda: db.structural_join(tag_a, tag_d, stats=JoinStatistics()),
            repeat=repeat,
        )
        t_on = measure(lambda: db.structural_join(tag_a, tag_d), repeat=repeat)
        out[label] = {
            "query": f"{tag_a}//{tag_d}",
            "pairs": pairs,
            "uncached_ms": t_off * _MS,
            "compiled_ms": t_compiled * _MS,
            "warm_ms": t_on * _MS,
            "speedup_compiled": t_compiled and t_off / t_compiled,
            "speedup": t_off / t_on if t_on > 0 else float("inf"),
        }
    return out


def bench_fig12(smoke: bool) -> tuple[Table, dict, list[float]]:
    """Fig12 join-mix workloads across cross-join fractions."""
    n_segments = 20 if smoke else 50
    fractions = [0.5] if smoke else [0.0, 0.5, 1.0]
    repeat = 2 if smoke else 5
    table = Table(
        "fig12 join mix — warm vs uncached",
        ["shape", "fraction", "query", "pairs", "uncached_ms", "compiled_ms",
         "warm_ms", "speedup_compiled", "speedup"],
    )
    results: dict = {}
    ad_speedups: list[float] = []
    for shape in ("nested", "balanced"):
        for fraction in fractions:
            config = sweep_configs(n_segments, shape, [fraction])[0]
            db = LazyXMLDatabase(keep_text=False)
            build_join_mix(db, config)
            timed = _time_both(
                db, [("a_d", "a", "d"), ("d_a", "d", "a")], repeat
            )
            key = f"{shape}/{fraction}"
            results[key] = timed
            results[key]["cache"] = db.readpath.stats()
            ad_speedups.append(timed["a_d"]["speedup"])
            for label in ("a_d", "d_a"):
                r = timed[label]
                table.add_row(
                    [shape, fraction, r["query"], r["pairs"],
                     r["uncached_ms"], r["compiled_ms"], r["warm_ms"],
                     r["speedup_compiled"], r["speedup"]]
                )
    return table, results, ad_speedups


def bench_fig13(smoke: bool) -> tuple[Table, dict, list[float]]:
    """Fig13 chopped spine document across segment counts."""
    depth = 60 if smoke else 200
    counts = [20] if smoke else [40, 160]
    repeat = 2 if smoke else 5
    text = spine_document(depth, 3)
    table = Table(
        "fig13 spine — warm vs uncached",
        ["shape", "segments", "query", "pairs", "uncached_ms", "compiled_ms",
         "warm_ms", "speedup_compiled", "speedup"],
    )
    results: dict = {}
    ad_speedups: list[float] = []
    for shape in ("nested", "balanced"):
        for count in counts:
            db, _ = chop_text(text, count, shape)
            timed = _time_both(
                db, [("t0_t1", "t0", "t1"), ("t1_t0", "t1", "t0")], repeat
            )
            key = f"{shape}/{count}"
            results[key] = timed
            results[key]["cache"] = db.readpath.stats()
            ad_speedups.append(timed["t0_t1"]["speedup"])
            for label in ("t0_t1", "t1_t0"):
                r = timed[label]
                table.add_row(
                    [shape, count, r["query"], r["pairs"],
                     r["uncached_ms"], r["compiled_ms"], r["warm_ms"],
                     r["speedup_compiled"], r["speedup"]]
                )
    return table, results, ad_speedups


def bench_fig14(smoke: bool) -> tuple[Table, dict]:
    """Fig14 XMark query set on a chopped site document."""
    scale = 0.01 if smoke else 0.05
    n_segments = 30 if smoke else 100
    repeat = 2 if smoke else 5
    text = generate_site(XMarkConfig(scale=scale, seed=7)).to_xml()
    db = LazyXMLDatabase(keep_text=False)
    apply_chop(db, _xmark_chop_ops(text, n_segments))
    queries = [(qid, a, d) for qid, a, d in XMARK_QUERIES]
    timed = _time_both(db, queries, repeat)
    timed_extra = _time_both(db, [("Q1r", "phone", "person")], repeat)
    timed.update(timed_extra)
    table = Table(
        "fig14 XMark — warm vs uncached",
        ["query_id", "query", "pairs", "uncached_ms", "compiled_ms",
         "warm_ms", "speedup_compiled", "speedup"],
    )
    for qid, r in timed.items():
        table.add_row(
            [qid, r["query"], r["pairs"], r["uncached_ms"], r["compiled_ms"],
             r["warm_ms"], r["speedup_compiled"], r["speedup"]]
        )
    timed["cache"] = db.readpath.stats()
    return table, timed


def bench_kernels(smoke: bool) -> tuple[Table, dict]:
    """Compiled-regime Stack-Tree joins per kernel backend.

    Every available backend (``legacy``, ``python`` and — when numpy is
    importable — ``numpy``) runs the same joins over memoized compiled
    columns with the result memo bypassed, so the measured delta *is* the
    merge kernel, not segment-list compilation.  Workloads: the fig12/
    fig13 representatives (many small per-segment merges — the kernels'
    size floor keeps backends close) and two single-segment stress shapes
    where merges are large enough for the column kernels to matter —
    ``alternating`` (4000 one-child ancestors: worst case for run
    detection, best case for vectorized range expansion) and ``runs``
    (200 ancestors x 50 children: long same-stack descendant runs).
    Pair counts must be identical across backends (the parity contract);
    per-backend speedups vs ``legacy`` are recorded.
    """
    repeat = 3 if smoke else 7
    workloads = []
    config = sweep_configs(20 if smoke else 50, "balanced", [0.5])[0]
    db12 = LazyXMLDatabase(keep_text=False)
    build_join_mix(db12, config)
    workloads.append(("fig12/balanced-0.5", db12, "a", "d"))
    text = spine_document(60 if smoke else 200, 3)
    db13, _ = chop_text(text, 20 if smoke else 160, "nested")
    workloads.append(("fig13/nested", db13, "t0", "t1"))
    n_alt = 800 if smoke else 4000
    db_alt = LazyXMLDatabase(keep_text=False)
    db_alt.insert(
        "<r>" + "".join(f"<a><d>x{i}</d></a>" for i in range(n_alt)) + "</r>"
    )
    workloads.append(("stress/alternating", db_alt, "a", "d"))
    n_runs = 40 if smoke else 200
    db_runs = LazyXMLDatabase(keep_text=False)
    db_runs.insert(
        "<r>" + ("<a>" + "<d>y</d>" * 50 + "</a>") * n_runs + "</r>"
    )
    workloads.append(("stress/runs", db_runs, "a", "d"))

    backends = ["legacy", "python"]
    if kernels.numpy_available():
        backends.append("numpy")
    table = Table(
        "join kernels — compiled-regime Stack-Tree per backend",
        ["workload", "backend", "pairs", "ad_ms", "da_ms",
         "speedup_vs_legacy"],
    )
    results: dict = {"backends": backends, "regime": "compiled"}
    for label, db, tag_a, tag_d in workloads:
        db.prepare_for_query()
        len(db.structural_join(tag_a, tag_d))  # compile pass
        per: dict = {}
        for backend in backends:
            with kernels.use_backend(backend):
                t_ad = measure(
                    lambda: db.structural_join(
                        tag_a, tag_d, stats=JoinStatistics()
                    ),
                    repeat=repeat,
                )
                t_da = measure(
                    lambda: db.structural_join(
                        tag_d, tag_a, stats=JoinStatistics()
                    ),
                    repeat=repeat,
                )
                pairs = len(db.structural_join(tag_a, tag_d))
            per[backend] = {
                "pairs": pairs,
                "ad_ms": t_ad * _MS,
                "da_ms": t_da * _MS,
            }
        base = per["legacy"]["ad_ms"]
        for backend in backends:
            rec = per[backend]
            rec["speedup_vs_legacy"] = (
                base / rec["ad_ms"] if rec["ad_ms"] > 0 else float("inf")
            )
            table.add_row(
                [label, backend, rec["pairs"], rec["ad_ms"],
                 rec["da_ms"], rec["speedup_vs_legacy"]]
            )
        per["identical_pairs"] = len({per[b]["pairs"] for b in backends}) == 1
        results[label] = per
    return table, results


def bench_cold_compile(smoke: bool) -> tuple[Table, dict]:
    """Bulk whole-tag compile vs per-segment compile, per backend.

    The micro-bench for the vectorized cold path itself: building every
    segment's compiled columns for a tag with one
    :meth:`ElementIndex.tag_columns` pass (a single B+-tree range
    slicing all leaves once) versus one :meth:`segment_columns` descent
    per segment — the record-at-a-time shape the uncached join path had
    before bulk compile.  Runs the bulk side under each compile backend
    (``python`` always; ``numpy`` when importable) and checks the
    parity contract inline: every bulk entry's columns must be
    byte-identical to the per-segment reference.
    """
    repeat = 3 if smoke else 7
    workloads = []
    config = sweep_configs(20 if smoke else 50, "nested", [0.5])[0]
    db12 = LazyXMLDatabase(keep_text=False)
    build_join_mix(db12, config)
    workloads.append(("fig12/nested-0.5", db12, ("a", "d")))
    text = spine_document(60 if smoke else 200, 3)
    db13, _ = chop_text(text, 20 if smoke else 160, "nested")
    workloads.append(("fig13/nested", db13, ("t0", "t1")))

    backends = ["python"]
    if kernels.numpy_available():
        backends.append("numpy")
    table = Table(
        "cold compile — bulk whole-tag vs per-segment",
        ["workload", "tag", "backend", "segments", "elements",
         "per_segment_ms", "bulk_ms", "bulk_speedup"],
    )
    results: dict = {"backends": backends}
    for label, db, tags in workloads:
        db.prepare_for_query()
        per_workload: dict = {}
        for tag in tags:
            tid = db.log.tags.intern(tag)
            reference = db.index.tag_columns(tid, backend="python")
            sids = list(reference)
            n_elements = sum(len(cols[1]) for cols in reference.values())

            def per_segment() -> None:
                for sid in sids:
                    db.index.segment_columns(tid, sid)

            t_ref = measure(per_segment, repeat=repeat)
            entry: dict = {
                "segments": len(sids),
                "elements": n_elements,
                "per_segment_ms": t_ref * _MS,
                "per_backend": {},
            }
            for backend in backends:
                bulk = db.index.tag_columns(tid, backend=backend)
                identical = set(bulk) == set(reference) and all(
                    bulk[sid][1].tobytes() == ref[1].tobytes()
                    and bulk[sid][2].tobytes() == ref[2].tobytes()
                    and bulk[sid][3].tobytes() == ref[3].tobytes()
                    for sid, ref in reference.items()
                )
                t_bulk = measure(
                    lambda backend=backend: db.index.tag_columns(
                        tid, backend=backend
                    ),
                    repeat=repeat,
                )
                speedup = t_ref / t_bulk if t_bulk > 0 else float("inf")
                entry["per_backend"][backend] = {
                    "bulk_ms": t_bulk * _MS,
                    "bulk_speedup": speedup,
                    "identical_columns": identical,
                }
                table.add_row(
                    [label, tag, backend, len(sids), n_elements,
                     t_ref * _MS, t_bulk * _MS, speedup]
                )
            per_workload[tag] = entry
        results[label] = per_workload
    return table, results


def profile_hotspots(smoke: bool, top: int = 20) -> dict:
    """cProfile the uncached fig12 representative; top-``top`` hotspots.

    Runs the cold (cache-disabled) join pair in both directions under
    cProfile and returns the hottest functions by cumulative time, so a
    regression hunt can start from the envelope instead of a re-run.
    """
    import cProfile
    import pstats

    config = sweep_configs(20 if smoke else 50, "nested", [0.5])[0]
    db = LazyXMLDatabase(keep_text=False)
    build_join_mix(db, config)
    db.readpath.disable()
    db.structural_join("a", "d")  # allocator / import warm-up pass
    profiler = cProfile.Profile()
    rounds = 2 if smoke else 5
    profiler.enable()
    for _ in range(rounds):
        db.structural_join("a", "d")
        db.structural_join("d", "a")
    profiler.disable()
    stats = pstats.Stats(profiler)
    hotspots = []
    ranked = sorted(
        stats.stats.items(), key=lambda item: item[1][3], reverse=True
    )
    for (filename, lineno, name), (cc, nc, tt, ct, _callers) in ranked[:top]:
        hotspots.append({
            "function": f"{Path(filename).name}:{lineno}:{name}",
            "ncalls": nc,
            "tottime_ms": tt * _MS,
            "cumtime_ms": ct * _MS,
        })
    return {
        "workload": "fig12/nested-0.5 uncached, both directions",
        "rounds": rounds,
        "top": hotspots,
    }


def _baseline_cold_speedups(root: Path, new_results: dict) -> dict | None:
    """Per-row cold (uncached) speedups vs the committed full-run baseline.

    Compares the fresh fig12/fig13 uncached times against the matching
    rows of the previously-committed ``BENCH_joins.json`` (the pre-kernel
    numbers) so the envelope records how much the vectorized read path
    moved the cold regime.  Returns ``None`` when no comparable baseline
    exists (first run, or the baseline was a smoke envelope).
    """
    path = root / "BENCH_joins.json"
    if not path.exists():
        return None
    try:
        old = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if old.get("params", {}).get("smoke"):
        return None
    rows: dict[str, float] = {}
    for fig in ("fig12", "fig13"):
        for key, workload in old.get("results", {}).get(fig, {}).items():
            for qlabel, rec in workload.items():
                if qlabel == "cache" or not isinstance(rec, dict):
                    continue
                new_rec = new_results.get(fig, {}).get(key, {}).get(qlabel)
                if not new_rec or not new_rec.get("uncached_ms"):
                    continue
                rows[f"{fig}/{key}/{qlabel}"] = (
                    rec["uncached_ms"] / new_rec["uncached_ms"]
                )
    if not rows:
        return None
    vals = list(rows.values())
    return {
        "min": min(vals),
        "median": statistics.median(vals),
        "max": max(vals),
        "rows": rows,
    }


def main() -> None:
    smoke = "--smoke" in sys.argv
    profile = "--profile" in sys.argv
    t12, r12, ad12 = bench_fig12(smoke)
    t13, r13, ad13 = bench_fig13(smoke)
    t14, r14 = bench_fig14(smoke)
    tk, rk = bench_kernels(smoke)
    tcc, rcc = bench_cold_compile(smoke)
    for table in (t12, t13, t14, tk, tcc):
        table.print()
    ad_speedups = ad12 + ad13
    summary = {
        "ad_speedup_min": min(ad_speedups),
        "ad_speedup_median": statistics.median(ad_speedups),
        "ad_speedup_max": max(ad_speedups),
        "meets_2x_warm_target": min(ad_speedups) >= 2.0,
        "kernel_backends": rk["backends"],
    }
    root = Path(__file__).resolve().parent.parent
    baseline = None if smoke else _baseline_cold_speedups(root, {"fig12": r12, "fig13": r13})
    if baseline is not None:
        summary["cold_speedup_vs_baseline"] = baseline
        print(f"[bench_joins] cold speedup vs committed baseline: "
              f"min {baseline['min']:.2f}x, median {baseline['median']:.2f}x, "
              f"max {baseline['max']:.2f}x")
    print(f"[bench_joins] A//D warm speedups: min {summary['ad_speedup_min']:.2f}x, "
          f"median {summary['ad_speedup_median']:.2f}x, "
          f"max {summary['ad_speedup_max']:.2f}x")
    results = {
        "fig12": r12,
        "fig13": r13,
        "fig14": r14,
        "kernels": rk,
        "cold_compile": rcc,
        "summary": summary,
    }
    if profile:
        results["profile"] = profile_hotspots(smoke)
        print("[bench_joins] cold-path hotspots (cumtime):")
        for spot in results["profile"]["top"][:8]:
            print(f"    {spot['cumtime_ms']:9.2f} ms  {spot['ncalls']:>8}  "
                  f"{spot['function']}")
    name = "BENCH_joins.smoke.json" if smoke else "BENCH_joins.json"
    write_envelope(
        root / name,
        "joins_readpath",
        params={
            "smoke": smoke,
            "profile": profile,
            "repeat": 2 if smoke else 5,
            "kernel_backends": rk["backends"],
            "compile_backends": rcc["backends"],
        },
        tables=[t12, t13, t14, tk, tcc],
        results=results,
    )


if __name__ == "__main__":
    main()
