"""Fig. 11(b): time to build the update log vs number of segments.

Benchmarks replaying a recorded (position, length, tag-counts) op script
into a fresh :class:`~repro.core.update_log.UpdateLog` — the pure
update-log build cost, without parsing or element-index work.

Run standalone for the full series:  python benchmarks/bench_fig11_buildtime.py
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

import pytest

from repro.bench.builders import parent_plan
from repro.bench.experiments import fig11_update_log
from repro.bench.harness import write_envelope
from repro.core.database import LazyXMLDatabase
from repro.core.update_log import UpdateLog
from repro.workloads.generator import generate_uniform_fragment, tag_pool
from repro.xml.parser import parse_fragment


def record_ops(n_segments: int, shape: str):
    """Build once through the database, recording the raw log ops."""
    db = LazyXMLDatabase(keep_text=False)
    tags = tag_pool(8)
    fragment = generate_uniform_fragment(24, tags)
    tag_counts = dict(Counter(e.tag for e in parse_fragment(fragment).elements))
    parents = parent_plan(n_segments, shape)
    ops, sids = [], []
    for i in range(n_segments):
        if parents[i] < 0:
            position = db.document_length
        else:
            position = db.log.node(sids[parents[i]]).end - (len(tags[0]) + 3)
        ops.append((position, len(fragment), tag_counts))
        sids.append(db.insert(fragment, position).sid)
    return ops


def replay(ops) -> UpdateLog:
    log = UpdateLog()
    for position, length, counts in ops:
        log.insert_segment(position, length, counts)
    return log


@pytest.mark.parametrize("shape", ["balanced", "nested"])
@pytest.mark.parametrize("n_segments", [60, 120])
def test_build_update_log(benchmark, shape, n_segments):
    ops = record_ops(n_segments, shape)
    log = benchmark(replay, ops)
    assert log.segment_count == n_segments


def main() -> None:
    tables = fig11_update_log()
    for table in tables.values():
        table.print()
    write_envelope(
        Path(__file__).resolve().parent.parent / "BENCH_fig11_buildtime.json",
        "fig11_buildtime",
        params={"segment_counts": [50, 100, 150, 200, 250, 300],
                "shapes": list(tables), "elements_per_segment": 24,
                "n_tags": 8, "repeat": 3},
        tables=list(tables.values()),
    )


if __name__ == "__main__":
    main()
