"""Fig. 12: structural join time vs percentage of cross-segment joins.

Workloads hold the segment count, |A| and |D| fixed while the cross-join
percentage sweeps; LD (Lazy-Join on a maintained log), LS (Lazy-Join
including the deferred prepare step) and STD (Stack-Tree-Desc on derived
global labels) are timed on the same data.

Expected shape (paper Fig. 12): LD below STD everywhere and improving with
the cross percentage; LS beats STD only above a threshold percentage.

Run standalone for the full series:  python benchmarks/bench_fig12_crossjoin.py
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.bench.experiments import fig12_cross_join
from repro.bench.harness import write_envelope
from repro.core.database import LazyXMLDatabase
from repro.workloads.join_mix import build_join_mix, sweep_configs

N_SEGMENTS = 50
FRACTIONS = [0.0, 0.5, 1.0]


def build(fraction: float, shape: str, mode: str) -> LazyXMLDatabase:
    config = sweep_configs(N_SEGMENTS, shape, [fraction])[0]
    db = LazyXMLDatabase(mode=mode, keep_text=False)
    build_join_mix(db, config)
    if mode == "static":
        db.prepare_for_query()
    return db


@pytest.mark.parametrize("shape", ["nested", "balanced"])
@pytest.mark.parametrize("fraction", FRACTIONS)
def test_ld_join(benchmark, shape, fraction):
    db = build(fraction, shape, "dynamic")
    pairs = benchmark(db.structural_join, "a", "d")
    assert pairs


@pytest.mark.parametrize("shape", ["nested", "balanced"])
@pytest.mark.parametrize("fraction", FRACTIONS)
def test_std_join(benchmark, shape, fraction):
    db = build(fraction, shape, "dynamic")
    pairs = benchmark(db.structural_join, "a", "d", algorithm="std")
    assert pairs


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_ls_join_including_prepare(benchmark, fraction):
    db = build(fraction, "nested", "static")
    rng = random.Random(0)

    def ls_query():
        db.log.mark_stale(rng)
        db.prepare_for_query()
        return db.structural_join("a", "d")

    pairs = benchmark(ls_query)
    assert pairs


def test_ld_beats_std_shape():
    """Pin the figure's qualitative claim at the 100% cross point."""
    from repro.bench.harness import measure

    db = build(1.0, "nested", "dynamic")
    t_ld = measure(lambda: db.structural_join("a", "d"), repeat=3)
    t_std = measure(lambda: db.structural_join("a", "d", algorithm="std"), repeat=3)
    assert t_ld < t_std


def main() -> None:
    tables = []
    for n_segments in (50, 100):
        for shape in ("nested", "balanced"):
            sweep = fig12_cross_join(n_segments=n_segments, shape=shape)
            table = sweep.to_table(f"Fig 12 — {shape}, {n_segments} segments")
            table.print()
            tables.append(table)
    write_envelope(
        Path(__file__).resolve().parent.parent / "BENCH_fig12_crossjoin.json",
        "fig12_crossjoin",
        params={"segment_counts": [50, 100],
                "shapes": ["nested", "balanced"]},
        tables=tables,
    )


if __name__ == "__main__":
    main()
