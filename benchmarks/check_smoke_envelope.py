"""CI gate for the perf-smoke envelopes.

Validates what the perf-smoke job needs beyond "the script exited 0",
dispatching on the envelope's ``benchmark`` name:

``joins_readpath`` (``BENCH_joins.smoke.json``):

- the envelope carries the current ``repro-bench/2`` schema with every
  required section present, including the ``meta`` block naming the
  active join-kernel and compile backends (a ``numpy`` compile backend
  claimed without numpy available is a contradiction and fails);
- the ``cold_compile`` series exists, covers at least the ``python``
  compile backend, and every bulk whole-tag compile produced columns
  **byte-identical** to the per-segment reference — a mismatch means
  the vectorized compile changed the answers;
- each workload recorded its read-path cache counters and the measured
  (second-and-later) passes actually hit the cache — a zero hit count
  means the memo keys broke and every "warm" number silently measured
  recompilation;
- the summary's A//D warm speedups exist and are positive;
- the kernel-backend series covers at least the ``legacy`` and ``python``
  backends (``numpy`` rides along when importable), every backend
  produced an **identical pair count** per workload — a mismatch means a
  vectorized kernel changed the answers, making its timing meaningless —
  and each backend recorded positive compiled-regime timings.

``replication`` (``BENCH_replication.smoke.json``):

- the catch-up scenario drained every record the partition withheld
  (post-heal lag must be zero — a positive lag means the healed
  follower silently serves stale reads) at a positive rate;
- follower pinned-read latency percentiles are sane (p99 >= p50 > 0)
  and the follower's A//D join answered *identically* to the primary's
  — a pair-count mismatch means replication changed the answers;
- every advertised failover round recorded a positive time-to-promote.

``net_service`` (``BENCH_net.smoke.json``):

- the open-loop sweep covers at least 3 arrival rates over at least 64
  connections, each with sane latency percentiles
  (p99 >= p95 >= p50 > 0) and a positive achieved rate;
- the closed-loop saturation ceiling is positive;
- the overload drill recorded typed sheds (a zero means the drill never
  actually overloaded the server and proves nothing) and **zero untyped
  failures** — overload must degrade into typed ``Overloaded``/``Busy``
  refusals, never hangs or raw socket errors — and the server answered a
  fresh connection afterwards.

``twig`` (``BENCH_twig.smoke.json``):

- every measured pattern answered **identically** under the holistic and
  pairwise executors (``matches_equal`` — a mismatch means the holistic
  evaluator changed the answers, making its timing meaningless) with
  positive timings on both sides and a recorded planner choice;
- the prune drill answered an impossible-path twig with ``[]`` without
  compiling a single read-path column (the cache's miss/entry counters
  did not move);
- the summary's holistic speedups exist and are positive.  Smoke runs on
  shared CI runners, so holistic-beats-pairwise (speedup > 1 on at least
  one branching workload) is asserted on the full ``BENCH_twig.json``.

``shard_scatter`` (``BENCH_shard.smoke.json``):

- results exist for every advertised shard count with sane latency
  percentiles (p99 >= p50 > 0);
- per-query pair counts are identical across shard counts — a mismatch
  means partitioning changed the answers, making every throughput
  number meaningless;
- the N=4 speedup is recorded.  Smoke runs on shared CI runners, so the
  gate only requires it to be positive; the >= 1.5x acceptance target is
  asserted on the full ``BENCH_shard.json`` run.

Usage:  python benchmarks/check_smoke_envelope.py [path]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REQUIRED_KEYS = {
    "schema", "benchmark", "meta", "params", "tables", "sweeps", "results",
    "metrics",
}
SCHEMA = "repro-bench/2"


def check(path: Path) -> None:
    doc = json.loads(path.read_text(encoding="utf-8"))
    assert doc.get("schema") == SCHEMA, f"schema {doc.get('schema')!r}"
    missing = REQUIRED_KEYS - set(doc)
    assert not missing, f"envelope missing sections: {sorted(missing)}"
    meta = doc["meta"]
    for key in ("join_kernel", "compile_backend", "numpy_available"):
        assert key in meta, f"meta missing {key!r}"
    assert not (
        meta["compile_backend"] == "numpy" and not meta["numpy_available"]
    ), "meta claims the numpy compile backend without numpy available"
    benchmark = doc["benchmark"]
    if benchmark == "shard_scatter":
        check_shard(doc)
        return
    if benchmark == "replication":
        check_replication(doc)
        return
    if benchmark == "net_service":
        check_net(doc)
        return
    if benchmark == "twig":
        check_twig(doc)
        return
    assert benchmark == "joins_readpath", f"unknown benchmark {benchmark!r}"

    results = doc["results"]
    caches = []
    for fig in ("fig12", "fig13"):
        for key, workload in results[fig].items():
            cache = workload.get("cache")
            assert cache is not None, f"{fig}/{key} recorded no cache stats"
            caches.append((f"{fig}/{key}", cache))
    caches.append(("fig14", results["fig14"]["cache"]))
    for label, cache in caches:
        assert cache["enabled"], f"{label}: cache was disabled"
        assert cache["hits"] > 0, f"{label}: warm passes never hit the cache"

    kernels = results["kernels"]
    backends = kernels["backends"]
    assert {"legacy", "python"} <= set(backends), (
        f"kernel series missing core backends: {backends}"
    )
    n_workloads = 0
    for label, per in kernels.items():
        if label in ("backends", "regime"):
            continue
        n_workloads += 1
        assert per["identical_pairs"], (
            f"kernels/{label}: pair counts differ across backends — a "
            f"vectorized kernel changed the answers"
        )
        for backend in backends:
            rec = per[backend]
            assert rec["ad_ms"] > 0 and rec["da_ms"] > 0, (
                f"kernels/{label}/{backend}: non-positive timing"
            )
            assert rec["speedup_vs_legacy"] > 0
    assert n_workloads > 0, "kernel series recorded no workloads"

    cold = results.get("cold_compile")
    assert cold is not None, "envelope missing the cold_compile series"
    compile_backends = cold["backends"]
    assert "python" in compile_backends, (
        f"cold_compile missing the python backend: {compile_backends}"
    )
    n_cold = 0
    for label, per_workload in cold.items():
        if label == "backends":
            continue
        for tag, entry in per_workload.items():
            n_cold += 1
            assert entry["segments"] > 0 and entry["elements"] > 0, (
                f"cold_compile/{label}/{tag}: empty workload proves nothing"
            )
            assert entry["per_segment_ms"] > 0
            for backend in compile_backends:
                rec = entry["per_backend"][backend]
                assert rec["identical_columns"], (
                    f"cold_compile/{label}/{tag}/{backend}: bulk columns "
                    f"differ from the per-segment reference — the "
                    f"vectorized compile changed the answers"
                )
                assert rec["bulk_ms"] > 0
    assert n_cold > 0, "cold_compile series recorded no workloads"

    summary = results["summary"]
    assert summary["ad_speedup_min"] > 0
    print(
        f"[check_smoke_envelope] OK: {len(caches)} workloads warm, "
        f"A//D speedups {summary['ad_speedup_min']:.2f}x..."
        f"{summary['ad_speedup_max']:.2f}x, kernel parity over "
        f"{n_workloads} workloads x {len(backends)} backends, "
        f"cold-compile parity over {n_cold} tags x "
        f"{len(compile_backends)} compile backends"
    )


def check_twig(doc: dict) -> None:
    results = doc["results"]
    n_patterns = 0
    for family in ("spine", "xmark"):
        groups = results[family]
        flat = (
            [groups] if family == "xmark" else [
                g for g in groups.values() if isinstance(g, dict)
            ]
        )
        for group in flat:
            for expr, rec in group.items():
                if not isinstance(rec, dict) or "speedup" not in rec:
                    continue
                n_patterns += 1
                assert rec["matches_equal"], (
                    f"twig/{expr}: holistic and pairwise answers differ — "
                    f"the holistic executor changed the answers"
                )
                assert rec["twig_ms"] > 0 and rec["pairwise_ms"] > 0, (
                    f"twig/{expr}: non-positive timing"
                )
                assert rec["planner_choice"] in ("twig", "pairwise"), (
                    f"twig/{expr}: no planner decision recorded"
                )
    assert n_patterns > 0, "twig envelope recorded no patterns"

    prune = results["prune"]
    assert prune["result_empty"], "prune drill returned matches"
    assert prune["compiled_zero_columns"], (
        "prune drill compiled read-path columns: the impossible-path twig "
        "was not answered from the path summary alone"
    )

    summary = results["summary"]
    assert summary["holistic_speedup_max"] > 0
    assert summary["holistic_speedup_median"] > 0
    assert summary["all_matches_equal"], "summary contradicts parity"
    if not doc["params"].get("smoke"):
        assert summary["holistic_speedup_max"] > 1.0, (
            "full run: holistic beat pairwise on no branching workload"
        )
    print(
        f"[check_smoke_envelope] OK: twig, {n_patterns} patterns with "
        f"identical answers, holistic speedup median "
        f"{summary['holistic_speedup_median']:.2f}x / max "
        f"{summary['holistic_speedup_max']:.2f}x, prune compiled nothing "
        f"({prune['prune_ms']:.3f} ms)"
    )


def check_shard(doc: dict) -> None:
    results = doc["results"]
    counts = doc["params"]["shard_counts"]
    pair_sets = []
    for n in counts:
        run = results.get(f"N={n}")
        assert run is not None, f"no results for N={n}"
        assert run["throughput_qps"] > 0, f"N={n}: zero throughput"
        assert 0 < run["p50_ms"] <= run["p99_ms"], f"N={n}: bad percentiles"
        pair_sets.append((n, run["pairs"]))
    base = pair_sets[0][1]
    for n, pairs in pair_sets[1:]:
        assert pairs == base, (
            f"N={n} pair counts differ from N={counts[0]}: partitioning "
            f"changed the answers"
        )
    summary = results["summary"]
    assert summary["speedup_n4"] > 0
    print(
        f"[check_smoke_envelope] OK: shard_scatter, {len(counts)} shard "
        f"counts, identical answers, N=4 speedup "
        f"{summary['speedup_n4']:.2f}x"
    )


def check_replication(doc: dict) -> None:
    params = doc["params"]
    results = doc["results"]

    catch_up = results["catch_up"]
    assert catch_up["records"] == params["catch_up_ops"], (
        f"catch-up moved {catch_up['records']} records, expected "
        f"{params['catch_up_ops']}"
    )
    assert catch_up["lag_after"] == 0, (
        f"healed follower still lags by {catch_up['lag_after']} records"
    )
    assert catch_up["throughput_rps"] > 0

    reads = results["follower_reads"]
    assert reads["pins"] == params["read_pins"]
    assert 0 < reads["p50_ms"] <= reads["p99_ms"], "bad read percentiles"
    assert reads["pairs_follower"] == reads["pairs_primary"], (
        f"follower answered {reads['pairs_follower']} pairs, primary "
        f"{reads['pairs_primary']}: replication changed the answers"
    )

    failover = results["failover"]
    assert failover["rounds"] == params["failover_rounds"]
    assert len(failover["rounds_ms"]) == failover["rounds"]
    assert all(t > 0 for t in failover["rounds_ms"])

    summary = results["summary"]
    assert summary["catch_up_rps"] > 0
    assert summary["failover_p50_ms"] > 0
    print(
        f"[check_smoke_envelope] OK: replication, catch-up "
        f"{summary['catch_up_rps']:.0f} rec/s, follower read p50 "
        f"{summary['follower_read_p50_ms']:.3f} ms, failover p50 "
        f"{summary['failover_p50_ms']:.2f} ms, identical answers"
    )


def check_net(doc: dict) -> None:
    params = doc["params"]
    results = doc["results"]
    assert params["connections"] >= 64, (
        f"only {params['connections']} connections; the acceptance "
        "criteria require >= 64"
    )
    rates = params["rates_rps"]
    assert len(rates) >= 3, f"only {len(rates)} arrival rates; need >= 3"

    runs = results["open_loop"]
    assert len(runs) == len(rates), "missing open-loop runs"
    for run in runs:
        label = f"rate={run['rate_rps']:.0f}rps"
        assert run["achieved_rps"] > 0, f"{label}: zero throughput"
        assert 0 < run["p50_ms"] <= run["p95_ms"] <= run["p99_ms"], (
            f"{label}: bad percentiles"
        )
        assert run["completed"] + run["sheds"] + run["errors"] == (
            run["offered"]
        ), f"{label}: requests unaccounted for (lost, not shed)"

    assert results["saturation"]["throughput_rps"] > 0

    drill = results["overload"]
    assert drill["sheds"] > 0, (
        "overload drill shed nothing: the server was never overloaded"
    )
    assert drill["untyped_failures"] == 0, (
        f"{drill['untyped_failures']} untyped failures under overload"
    )
    assert drill["alive_after"], "server unresponsive after overload"
    print(
        f"[check_smoke_envelope] OK: net_service, {len(rates)} rates x "
        f"{params['connections']} conns, saturation "
        f"{results['saturation']['throughput_rps']:.0f} rps, "
        f"{drill['sheds']} typed sheds, 0 untyped"
    )


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__
    ).resolve().parent.parent / "BENCH_joins.smoke.json"
    check(target)
