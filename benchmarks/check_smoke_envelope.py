"""CI gate for the perf-smoke envelope (``BENCH_joins.smoke.json``).

Validates what the perf-smoke job needs beyond "the script exited 0":

- the envelope carries the current ``repro-bench/2`` schema with every
  required section present;
- each workload recorded its read-path cache counters and the measured
  (second-and-later) passes actually hit the cache — a zero hit count
  means the memo keys broke and every "warm" number silently measured
  recompilation;
- the summary's A//D warm speedups exist and are positive.

Usage:  python benchmarks/check_smoke_envelope.py [path]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REQUIRED_KEYS = {
    "schema", "benchmark", "params", "tables", "sweeps", "results", "metrics",
}
SCHEMA = "repro-bench/2"


def check(path: Path) -> None:
    doc = json.loads(path.read_text(encoding="utf-8"))
    assert doc.get("schema") == SCHEMA, f"schema {doc.get('schema')!r}"
    missing = REQUIRED_KEYS - set(doc)
    assert not missing, f"envelope missing sections: {sorted(missing)}"
    assert doc["benchmark"] == "joins_readpath"

    results = doc["results"]
    caches = []
    for fig in ("fig12", "fig13"):
        for key, workload in results[fig].items():
            cache = workload.get("cache")
            assert cache is not None, f"{fig}/{key} recorded no cache stats"
            caches.append((f"{fig}/{key}", cache))
    caches.append(("fig14", results["fig14"]["cache"]))
    for label, cache in caches:
        assert cache["enabled"], f"{label}: cache was disabled"
        assert cache["hits"] > 0, f"{label}: warm passes never hit the cache"

    summary = results["summary"]
    assert summary["ad_speedup_min"] > 0
    print(
        f"[check_smoke_envelope] OK: {len(caches)} workloads warm, "
        f"A//D speedups {summary['ad_speedup_min']:.2f}x..."
        f"{summary['ad_speedup_max']:.2f}x"
    )


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        __file__
    ).resolve().parent.parent / "BENCH_joins.smoke.json"
    check(target)
