"""Perf-trajectory ledger: headline metrics across PR generations.

Every PR that refreshes a full ``BENCH_*.json`` moves a handful of
headline numbers — cold join speedup, warm memo speedup, ingest
throughput, service saturation, shard scaling, replication catch-up.
Each envelope only records *its own* run, so regressions that creep in
over several PRs are invisible unless someone diffs git history by hand.

This script distills the committed full-run envelopes into one headline
record and appends it to ``BENCH_TRAJECTORY.json`` — a label-keyed
ledger (one entry per PR generation) that the perf gate and future
sessions can read to see the trajectory, not just the latest point.
Re-running with an existing label replaces that entry in place
(idempotent), so refreshing a benchmark mid-PR does not duplicate rows.

Metrics are extracted defensively: an absent envelope or summary key
records ``null`` rather than failing, because early generations predate
some benchmarks entirely.

Usage:  python benchmarks/trajectory.py --label PR9
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

TRAJECTORY_SCHEMA = "repro-trajectory/1"


def _get(doc: dict | None, *path: str):
    """``doc[path[0]][path[1]]...`` or ``None`` anywhere along the way."""
    node = doc
    for key in path:
        if not isinstance(node, dict):
            return None
        node = node.get(key)
    return node


def _load(root: Path, name: str) -> dict | None:
    path = root / name
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    # Smoke envelopes are CI-runner noise, never trajectory points.
    if _get(doc, "params", "smoke"):
        return None
    return doc


def headline(root: Path) -> dict:
    """The headline metrics of every committed full-run envelope."""
    joins = _load(root, "BENCH_joins.json")
    fig16 = _load(root, "BENCH_fig16_insert.json")
    net = _load(root, "BENCH_net.json")
    shard = _load(root, "BENCH_shard.json")
    repl = _load(root, "BENCH_replication.json")
    twig = _load(root, "BENCH_twig.json")
    return {
        "joins": {
            "ad_speedup_median": _get(
                joins, "results", "summary", "ad_speedup_median"
            ),
            "cold_speedup_vs_baseline_median": _get(
                joins, "results", "summary", "cold_speedup_vs_baseline",
                "median"
            ),
            "meta": _get(joins, "meta"),
        },
        "ingest": {
            "batched_speedup": _get(
                fig16, "results", "batched_ingest", "speedup"
            ),
        },
        "net": {
            "saturation_rps": _get(net, "results", "summary", "saturation_rps"),
        },
        "shard": {
            "speedup_n4": _get(shard, "results", "summary", "speedup_n4"),
        },
        "replication": {
            "catch_up_rps": _get(repl, "results", "summary", "catch_up_rps"),
        },
        "twig": {
            "holistic_speedup_median": _get(
                twig, "results", "summary", "holistic_speedup_median"
            ),
            "holistic_speedup_max": _get(
                twig, "results", "summary", "holistic_speedup_max"
            ),
        },
    }


def append(root: Path, label: str) -> dict:
    """Record ``label``'s headline into ``BENCH_TRAJECTORY.json``."""
    path = root / "BENCH_TRAJECTORY.json"
    ledger = {"schema": TRAJECTORY_SCHEMA, "entries": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            loaded = None
        if (
            isinstance(loaded, dict)
            and loaded.get("schema") == TRAJECTORY_SCHEMA
            and isinstance(loaded.get("entries"), list)
        ):
            ledger = loaded
    entry = {"label": label, "metrics": headline(root)}
    entries = [e for e in ledger["entries"] if e.get("label") != label]
    entries.append(entry)
    ledger["entries"] = entries
    path.write_text(
        json.dumps(ledger, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"[trajectory] wrote {path} ({len(entries)} entries)")
    return entry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label", required=True,
        help="generation label for this entry (e.g. PR9); re-using a "
             "label replaces its entry",
    )
    args = parser.parse_args()
    root = Path(__file__).resolve().parent.parent
    entry = append(root, args.label)
    for group, metrics in entry["metrics"].items():
        for name, value in metrics.items():
            if name == "meta" or value is None:
                continue
            print(f"    {group}.{name} = {value:.4g}")


if __name__ == "__main__":
    main()
