"""Fig. 15: LS / LD / STD join times on the XMark query set.

Dataset chopped into 100 segments with person-child splits (the paper's
"slightly modified" XMark raising cross-segment joins to 20–30%).
Expected shape: LD outperforms STD on all five queries.

Run standalone for the full table:  python benchmarks/bench_fig15_xmark.py
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.bench.experiments import _xmark_chop_ops, fig14_15_xmark
from repro.bench.harness import write_envelope
from repro.core.database import LazyXMLDatabase
from repro.workloads.chopper import apply_chop
from repro.workloads.xmark import XMARK_QUERIES, XMarkConfig, generate_site

SCALE = 0.03
SEGMENTS = 100
QUERY_IDS = [q[0] for q in XMARK_QUERIES]


@pytest.fixture(scope="module")
def ops():
    text = generate_site(XMarkConfig(scale=SCALE, seed=7)).to_xml()
    return _xmark_chop_ops(text, SEGMENTS)


@pytest.fixture(scope="module")
def ld_db(ops):
    db = LazyXMLDatabase(keep_text=False)
    apply_chop(db, ops)
    return db


@pytest.fixture(scope="module")
def ls_db(ops):
    db = LazyXMLDatabase(mode="static", keep_text=False)
    apply_chop(db, ops)
    db.prepare_for_query()
    return db


@pytest.mark.parametrize("query", XMARK_QUERIES, ids=QUERY_IDS)
def test_ld(benchmark, ld_db, query):
    _, tag_a, tag_d = query
    assert benchmark(ld_db.structural_join, tag_a, tag_d)


@pytest.mark.parametrize("query", XMARK_QUERIES, ids=QUERY_IDS)
def test_std(benchmark, ld_db, query):
    _, tag_a, tag_d = query
    assert benchmark(ld_db.structural_join, tag_a, tag_d, algorithm="std")


@pytest.mark.parametrize("query", XMARK_QUERIES, ids=QUERY_IDS)
def test_ls_including_prepare(benchmark, ls_db, query):
    _, tag_a, tag_d = query
    rng = random.Random(0)

    def ls_query():
        ls_db.log.mark_stale(rng)
        ls_db.prepare_for_query()
        return ls_db.structural_join(tag_a, tag_d)

    assert benchmark(ls_query)


def test_ld_beats_std_on_every_query(ld_db):
    from repro.bench.harness import measure

    for _, tag_a, tag_d in XMARK_QUERIES:
        t_ld = measure(lambda: ld_db.structural_join(tag_a, tag_d), repeat=3)
        t_std = measure(
            lambda: ld_db.structural_join(tag_a, tag_d, algorithm="std"), repeat=3
        )
        assert t_ld < t_std, (tag_a, tag_d, t_ld, t_std)


def main() -> None:
    cards, times = fig14_15_xmark()
    cards.print()
    times.print()
    write_envelope(
        Path(__file__).resolve().parent.parent / "BENCH_fig15_xmark.json",
        "fig15_xmark",
        params={"scale": 0.05, "n_segments": 100, "seed": 7, "repeat": 3},
        tables=[cards, times],
    )


if __name__ == "__main__":
    main()
