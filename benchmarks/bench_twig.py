"""Twig engine: holistic vs pairwise on branching patterns + prune drill.

Two workload families, both branching-pattern heavy:

- **spine** — the fig13 spine document (a ``depth``-long ``t0`` chain,
  ``t1``/``t2`` leaf children per spine node) chopped into segments.
  ``t0[t2]//t1`` concentrates a quadratic ``t0//t1`` pair set on the
  spine: the pairwise decomposition must materialize it, the holistic
  executor reduces it with linear semi-joins.
- **xmark** — the XMark-like site document, branching patterns over the
  Fig. 14 tag set (``person[profile/interest]/phone`` etc.).

Each pattern runs under both forced strategies over the same warm
compiled columns (best-of-``repeat``); answers are compared record by
record (``matches_equal`` must hold everywhere — this is the parity
contract measured rather than assumed).  The planner's unforced choice
is recorded per pattern.

The **prune drill** pins the other tentpole acceptance criterion: on a
freshly-chopped (never-queried) database, a twig naming an absent tag
must answer ``[]`` from the path summary alone — the read-path cache's
miss and entry counters must not move, proving no column was compiled —
while a feasible pattern on the same cold database pays the full
compile, for contrast.

Run:  python benchmarks/bench_twig.py [--smoke]

``--smoke`` shrinks workloads for the CI perf-smoke job and writes
``BENCH_twig.smoke.json`` instead of ``BENCH_twig.json``.
"""

from __future__ import annotations

import statistics
import sys
from pathlib import Path

from repro.bench.experiments import _xmark_chop_ops, spine_document
from repro.bench.harness import Table, measure, write_envelope
from repro.core.database import LazyXMLDatabase
from repro.twig import PathSummary, parse_twig
from repro.twig.evaluate import evaluate_twig
from repro.twig.plan import plan_twig
from repro.workloads.chopper import apply_chop, chop_text
from repro.workloads.xmark import XMarkConfig, generate_site

_MS = 1e3

SPINE_PATTERNS = ["t0[t2]//t1", "t0[t1]/t2", "t0[t1//t2]"]
XMARK_PATTERNS = [
    "person[profile/interest]/phone",
    "person[address]//watch",
    "person[profile/interest][watches]//phone",
    "people/person[watches/watch]",
    "person[address/city]//interest",
]


def _record_keys(records):
    return [(r.sid, r.start, r.end, r.level) for r in records]


def _time_patterns(db, patterns, repeat: int) -> dict:
    """Warm holistic vs pairwise per pattern, with parity checked."""
    summary = PathSummary(db.log)
    out = {}
    for expr in patterns:
        plan = plan_twig(parse_twig(expr), summary)
        twig_records = evaluate_twig(db, expr, strategy="twig")
        pair_records = evaluate_twig(db, expr, strategy="pairwise")
        t_twig = measure(
            lambda: evaluate_twig(db, expr, strategy="twig"), repeat=repeat
        )
        t_pair = measure(
            lambda: evaluate_twig(db, expr, strategy="pairwise"), repeat=repeat
        )
        out[expr] = {
            "matches": len(twig_records),
            "matches_equal": _record_keys(twig_records)
            == _record_keys(pair_records),
            "twig_ms": t_twig * _MS,
            "pairwise_ms": t_pair * _MS,
            "speedup": t_pair / t_twig if t_twig > 0 else float("inf"),
            "planner_choice": plan.strategy,
            "cost_twig": plan.cost_twig,
            "cost_pairwise": plan.cost_pairwise,
        }
    return out


def bench_spine(smoke: bool) -> tuple[Table, dict]:
    depth = 60 if smoke else 150
    segments = [20] if smoke else [20, 40]
    repeat = 2 if smoke else 5
    text = spine_document(depth, 3)
    table = Table(
        "twig vs pairwise — fig13 spine",
        ["segments", "pattern", "matches", "twig_ms", "pairwise_ms",
         "speedup", "planner"],
    )
    results: dict = {"depth": depth}
    for count in segments:
        db, _ = chop_text(text, count, "nested")
        db.prepare_for_query()
        timed = _time_patterns(db, SPINE_PATTERNS, repeat)
        results[str(count)] = timed
        for expr, r in timed.items():
            table.add_row(
                [count, expr, r["matches"], r["twig_ms"], r["pairwise_ms"],
                 r["speedup"], r["planner_choice"]]
            )
    return table, results


def bench_xmark(smoke: bool) -> tuple[Table, dict]:
    scale = 0.01 if smoke else 0.02
    n_segments = 30 if smoke else 60
    repeat = 2 if smoke else 5
    text = generate_site(XMarkConfig(scale=scale, seed=7)).to_xml()
    db = LazyXMLDatabase(keep_text=False)
    apply_chop(db, _xmark_chop_ops(text, n_segments))
    db.prepare_for_query()
    timed = _time_patterns(db, XMARK_PATTERNS, repeat)
    table = Table(
        "twig vs pairwise — XMark branching",
        ["pattern", "matches", "twig_ms", "pairwise_ms", "speedup",
         "planner"],
    )
    for expr, r in timed.items():
        table.add_row(
            [expr, r["matches"], r["twig_ms"], r["pairwise_ms"],
             r["speedup"], r["planner_choice"]]
        )
    timed["scale"] = scale
    timed["segments"] = n_segments
    return table, timed


def bench_prune(smoke: bool) -> dict:
    """Impossible-path twig on a cold database: zero columns compiled."""
    depth = 60 if smoke else 150
    text = spine_document(depth, 3)
    db, _ = chop_text(text, 20 if smoke else 40, "nested")
    db.prepare_for_query()
    before = db.readpath.stats()
    t_prune = measure(lambda: evaluate_twig(db, "t0//absent[t1]"), repeat=3)
    pruned_result = evaluate_twig(db, "t0//absent[t1]")
    after = db.readpath.stats()
    zero_columns = (
        after["misses"] == before["misses"]
        and after["entries"] == before["entries"]
    )
    # Contrast: the first feasible twig on the same cold db pays the
    # compile (misses move), bounding what the prune skipped.
    t_cold = measure(
        lambda: evaluate_twig(db, "t0[t2]//t1", strategy="twig"), repeat=1
    )
    compiled = db.readpath.stats()
    return {
        "pattern": "t0//absent[t1]",
        "result_empty": pruned_result == [],
        "compiled_zero_columns": zero_columns,
        "prune_ms": t_prune * _MS,
        "cold_feasible_ms": t_cold * _MS,
        "misses_before": before["misses"],
        "misses_after_prune": after["misses"],
        "misses_after_feasible": compiled["misses"],
    }


def main() -> None:
    smoke = "--smoke" in sys.argv
    t_spine, r_spine = bench_spine(smoke)
    t_xmark, r_xmark = bench_xmark(smoke)
    r_prune = bench_prune(smoke)
    for table in (t_spine, t_xmark):
        table.print()

    per_pattern = [
        rec
        for group in list(r_spine.values()) + [r_xmark]
        if isinstance(group, dict)
        for rec in group.values()
        if isinstance(rec, dict) and "speedup" in rec
    ]
    speedups = [rec["speedup"] for rec in per_pattern]
    summary = {
        "patterns": len(per_pattern),
        "holistic_speedup_max": max(speedups),
        "holistic_speedup_median": statistics.median(speedups),
        "holistic_wins": sum(1 for s in speedups if s > 1.0),
        "all_matches_equal": all(rec["matches_equal"] for rec in per_pattern),
        "prune_zero_columns": r_prune["compiled_zero_columns"],
    }
    print(
        f"[bench_twig] holistic speedup: median "
        f"{summary['holistic_speedup_median']:.2f}x, max "
        f"{summary['holistic_speedup_max']:.2f}x over "
        f"{summary['patterns']} patterns "
        f"({summary['holistic_wins']} holistic wins); prune drill "
        f"{'compiled nothing' if summary['prune_zero_columns'] else 'COMPILED COLUMNS'}"
        f" in {r_prune['prune_ms']:.3f} ms"
    )

    root = Path(__file__).resolve().parent.parent
    name = "BENCH_twig.smoke.json" if smoke else "BENCH_twig.json"
    write_envelope(
        root / name,
        "twig",
        params={"smoke": smoke, "repeat": 2 if smoke else 5},
        tables=[t_spine, t_xmark],
        results={
            "spine": r_spine,
            "xmark": r_xmark,
            "prune": r_prune,
            "summary": summary,
        },
    )


if __name__ == "__main__":
    main()
