"""Fig. 14: the XMark query set and its result cardinalities.

Cardinalities are generator-dependent (we substitute a scaled XMark-like
generator for the 100 MB XMark dataset), so the reproduced quantity is the
*relative* ordering the paper's table shows: Q4 >= Q3 (every watches//watch
pair is also a person//watch pair) and Q5 >= Q2 likewise.

Run standalone for the table:  python benchmarks/bench_fig14_queries.py
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.experiments import _xmark_chop_ops, fig14_15_xmark
from repro.bench.harness import write_envelope
from repro.core.database import LazyXMLDatabase
from repro.workloads.chopper import apply_chop
from repro.workloads.xmark import XMARK_QUERIES, XMarkConfig, generate_site


@pytest.fixture(scope="module")
def xmark_db():
    text = generate_site(XMarkConfig(scale=0.03, seed=7)).to_xml()
    db = LazyXMLDatabase(keep_text=False)
    apply_chop(db, _xmark_chop_ops(text, 60))
    return db


@pytest.mark.parametrize("query", XMARK_QUERIES, ids=[q[0] for q in XMARK_QUERIES])
def test_query_cardinality(benchmark, xmark_db, query):
    _, tag_a, tag_d = query
    pairs = benchmark(xmark_db.structural_join, tag_a, tag_d)
    assert pairs


def test_cardinality_ordering(xmark_db):
    counts = {
        qid: len(xmark_db.structural_join(tag_a, tag_d))
        for qid, tag_a, tag_d in XMARK_QUERIES
    }
    # person//watch ⊇ watches//watch and person//interest ⊇ profile//interest
    assert counts["Q4"] >= counts["Q3"]
    assert counts["Q5"] >= counts["Q2"]


def test_all_algorithms_agree_on_cardinalities(xmark_db):
    for _, tag_a, tag_d in XMARK_QUERIES:
        lazy = len(xmark_db.structural_join(tag_a, tag_d))
        std = len(xmark_db.structural_join(tag_a, tag_d, algorithm="std"))
        assert lazy == std


def main() -> None:
    cards, _ = fig14_15_xmark()
    cards.print()
    write_envelope(
        Path(__file__).resolve().parent.parent / "BENCH_fig14_queries.json",
        "fig14_queries",
        params={"scale": 0.05, "n_segments": 100, "seed": 7, "repeat": 3},
        tables=[cards],
    )


if __name__ == "__main__":
    main()
