"""Network front-end benchmark: open-loop load, saturation, typed sheds.

Drives a real :class:`~repro.net.server.TcpServer` over loopback TCP and
measures what an operator sizing the front end needs:

- **open-loop latency** — requests arrive on a fixed schedule (the
  arrival clock never waits for responses, so coordinated omission
  cannot hide queueing); p50/p95/p99 per arrival rate across ≥64
  concurrent pipelined connections, with typed sheds counted separately;
- **saturation throughput** — closed-loop burst across all connections:
  the ceiling the open-loop rates are judged against;
- **overload drill** — arrival rate far above a deliberately tiny
  in-flight budget: every refusal must be a *typed*
  :class:`~repro.errors.Overloaded`/:class:`~repro.errors.Busy`, never a
  hang, never an untyped failure, and the server must still answer a
  fresh connection afterwards.

Results print as tables and are recorded to ``BENCH_net.json`` at the
repository root (``--smoke`` shrinks rates/durations and writes
``BENCH_net.smoke.json``).

Run:  python benchmarks/bench_net.py [--smoke]
"""

from __future__ import annotations

import asyncio
import sys
import time
from pathlib import Path

from repro.bench.harness import Sweep, Table, write_envelope
from repro.core.database import LazyXMLDatabase
from repro.errors import Busy, Overloaded, ReproError
from repro.net.client import connect
from repro.net.server import NetServerConfig, TcpServer
from repro.service.server import DatabaseService
from repro.workloads.scenarios import registration_stream

_MS = 1e3


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def make_service(docs: int = 50) -> DatabaseService:
    db = LazyXMLDatabase()
    for fragment in registration_stream(docs):
        db.insert(fragment)
    db.prepare_for_query()
    return DatabaseService(db)


async def _connect_all(port: int, conns: int):
    clients = await asyncio.gather(
        *(connect("127.0.0.1", port) for _ in range(conns))
    )
    return list(clients)


async def _close_all(clients) -> None:
    await asyncio.gather(
        *(c.close(goodbye=False) for c in clients), return_exceptions=True
    )


# ----------------------------------------------------------------------
# scenarios


async def open_loop(port: int, conns: int, rate: float, duration: float) -> dict:
    """Fixed-rate arrivals round-robined over ``conns`` connections.

    Latency is measured from the *scheduled* arrival time, not the send
    time, so server-side queueing during overload shows up in the tail
    instead of silently stretching the arrival clock.
    """
    clients = await _connect_all(port, conns)
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    sheds = 0
    errors = 0
    total = int(rate * duration)
    start = loop.time() + 0.05  # headroom so arrival 0 is never late

    async def fire(i: int) -> None:
        nonlocal sheds, errors
        scheduled = start + i / rate
        delay = scheduled - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            if i % 10 == 9:
                await clients[i % conns].request(
                    "insert",
                    fragment=(
                        f"<registration><name>b{i}</name></registration>"
                    ),
                )
            else:
                await clients[i % conns].request(
                    "query", expr="name", limit=10
                )
            latencies.append(loop.time() - scheduled)
        except (Overloaded, Busy):
            sheds += 1
        except ReproError:
            errors += 1

    began = time.perf_counter()
    await asyncio.gather(*(fire(i) for i in range(total)))
    elapsed = time.perf_counter() - began
    await _close_all(clients)
    latencies.sort()
    completed = len(latencies)
    return {
        "rate_rps": rate,
        "offered": total,
        "completed": completed,
        "sheds": sheds,
        "errors": errors,
        "achieved_rps": completed / elapsed if elapsed > 0 else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * _MS,
        "p95_ms": _percentile(latencies, 0.95) * _MS,
        "p99_ms": _percentile(latencies, 0.99) * _MS,
    }


async def saturation(port: int, conns: int, duration: float, depth: int) -> dict:
    """Closed-loop ceiling: ``conns`` connections, ``depth`` outstanding
    requests each, as fast as responses come back."""
    clients = await _connect_all(port, conns)
    loop = asyncio.get_running_loop()
    stop_at = loop.time() + duration
    completed = 0
    sheds = 0

    async def worker(client) -> None:
        nonlocal completed, sheds
        while loop.time() < stop_at:
            try:
                await client.request("query", expr="name", limit=10)
                completed += 1
            except (Overloaded, Busy):
                sheds += 1
            except ReproError:
                pass

    began = time.perf_counter()
    await asyncio.gather(
        *(worker(c) for c in clients for _ in range(depth))
    )
    elapsed = time.perf_counter() - began
    await _close_all(clients)
    return {
        "connections": conns,
        "depth": depth,
        "completed": completed,
        "sheds": sheds,
        "elapsed_s": elapsed,
        "throughput_rps": completed / elapsed if elapsed > 0 else 0.0,
    }


async def overload_drill(
    service: DatabaseService, conns: int, duration: float
) -> dict:
    """Offered load far over a tiny in-flight budget: overload must
    degrade into typed sheds, and only typed sheds."""
    config = NetServerConfig(
        port=0, max_inflight=4, max_inflight_per_conn=2, max_conns=conns + 8,
    )
    server = TcpServer(service, config)
    await server.start()
    clients = await _connect_all(server.port, conns)
    loop = asyncio.get_running_loop()
    stop_at = loop.time() + duration
    completed = 0
    sheds = 0
    untyped = 0

    async def worker(client) -> None:
        nonlocal completed, sheds, untyped
        while loop.time() < stop_at:
            try:
                await client.request("query", expr="name", limit=10)
                completed += 1
            except (Overloaded, Busy):
                sheds += 1
            except ReproError:
                sheds += 1  # other typed refusals still count as typed
            except Exception:
                untyped += 1

    await asyncio.gather(
        *(worker(c) for c in clients for _ in range(4))
    )
    await _close_all(clients)
    # Liveness after the storm: a fresh connection is served.
    probe = await connect("127.0.0.1", server.port)
    alive = (await probe.ping())["pong"] is True
    await probe.close()
    status = server.status()
    await server.drain(grace=2.0)
    return {
        "connections": conns,
        "completed": completed,
        "sheds": sheds,
        "untyped_failures": untyped,
        "alive_after": alive,
        "server_sheds": status["counters"]["sheds"],
    }


# ----------------------------------------------------------------------
# driver


async def run(smoke: bool) -> dict:
    conns = 64
    rates = [100.0, 300.0, 600.0] if smoke else [200.0, 500.0, 1000.0, 2000.0]
    duration = 1.5 if smoke else 4.0
    sat_duration = 1.0 if smoke else 3.0
    overload_duration = 0.8 if smoke else 2.0

    service = make_service()
    server = TcpServer(service, NetServerConfig(port=0, max_conns=conns + 8))
    await server.start()
    port = server.port

    sat = await saturation(port, conns, sat_duration, depth=2)
    rate_results = []
    for rate in rates:
        rate_results.append(await open_loop(port, conns, rate, duration))
    await server.drain(grace=2.0)

    drill_service = make_service()
    drill = await overload_drill(drill_service, conns, overload_duration)
    drill_service.close()
    service.close()

    return {
        "conns": conns,
        "rates": rates,
        "duration": duration,
        "saturation": sat,
        "open_loop": rate_results,
        "overload": drill,
    }


def main() -> int:
    smoke = "--smoke" in sys.argv
    out = asyncio.run(run(smoke))

    sweep = Sweep("rate_rps")
    table = Table(
        "net: open-loop latency by arrival rate "
        f"({out['conns']} connections)",
        ["rate rps", "achieved rps", "p50 ms", "p95 ms", "p99 ms",
         "sheds", "errors"],
    )
    for r in out["open_loop"]:
        table.add_row([
            f"{r['rate_rps']:.0f}", f"{r['achieved_rps']:.0f}",
            f"{r['p50_ms']:.3f}", f"{r['p95_ms']:.3f}", f"{r['p99_ms']:.3f}",
            r["sheds"], r["errors"],
        ])
        sweep.add(
            r["rate_rps"],
            achieved_rps=r["achieved_rps"],
            p50_ms=r["p50_ms"], p95_ms=r["p95_ms"], p99_ms=r["p99_ms"],
            sheds=float(r["sheds"]),
        )
    table.print()

    sat = out["saturation"]
    drill = out["overload"]
    extra = Table(
        "net: saturation and overload drill",
        ["scenario", "completed", "sheds", "untyped", "rate rps"],
    )
    extra.add_row([
        "saturation", sat["completed"], sat["sheds"], 0,
        f"{sat['throughput_rps']:.0f}",
    ])
    extra.add_row([
        "overload", drill["completed"], drill["sheds"],
        drill["untyped_failures"], "-",
    ])
    extra.print()

    results = {
        "saturation": sat,
        "open_loop": out["open_loop"],
        "overload": drill,
        "summary": {
            "saturation_rps": sat["throughput_rps"],
            "p50_ms_at_lowest_rate": out["open_loop"][0]["p50_ms"],
            "p99_ms_at_highest_rate": out["open_loop"][-1]["p99_ms"],
            "overload_sheds": drill["sheds"],
            "overload_untyped": drill["untyped_failures"],
        },
    }
    name = "BENCH_net.smoke.json" if smoke else "BENCH_net.json"
    write_envelope(
        Path(__file__).resolve().parent.parent / name,
        "net_service",
        params={
            "connections": out["conns"],
            "rates_rps": out["rates"],
            "duration_s": out["duration"],
            "smoke": smoke,
        },
        tables=[table, extra],
        sweeps=[sweep],
        results=results,
    )
    if drill["untyped_failures"]:
        print(
            f"[bench_net] FAIL: {drill['untyped_failures']} untyped "
            "failures under overload"
        )
        return 1
    if not drill["alive_after"]:
        print("[bench_net] FAIL: server unresponsive after overload")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
