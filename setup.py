"""Legacy setup shim: allows editable installs on environments whose
setuptools lacks PEP 517 wheel support. All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
